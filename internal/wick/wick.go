// Package wick expands correlation-function specifications into contraction
// graphs, the front-end role Redstar plays in the paper: given source and
// sink interpolating operators with quark content, it enumerates the Wick
// contractions — all flavor-preserving pairings of quarks with antiquarks —
// and emits one contraction graph per pairing, with hadron blocks shared
// across graphs, momenta and time slices through a common block table.
// Graphs that are disconnected (or contain self-contractions) are dropped,
// and isomorphic duplicates are deduplicated, yielding the paper's "unique
// contraction graphs".
package wick

import (
	"errors"
	"fmt"

	"micco/internal/graph"
	"micco/internal/tensor"
)

// Quark is one quark field inside an interpolating operator.
type Quark struct {
	Flavor string
	Bar    bool // true for an antiquark
}

// Q returns a quark of the given flavor.
func Q(flavor string) Quark { return Quark{Flavor: flavor} }

// Qbar returns an antiquark of the given flavor.
func Qbar(flavor string) Quark { return Quark{Flavor: flavor, Bar: true} }

// Operator is an interpolating operator (a hadron): a named bundle of
// quark fields. Meson returns the common quark-antiquark case.
type Operator struct {
	Name   string
	Quarks []Quark
}

// Meson builds a quark-antiquark operator.
func Meson(name, quark, antiquark string) Operator {
	return Operator{Name: name, Quarks: []Quark{Q(quark), Qbar(antiquark)}}
}

// Baryon builds a three-quark operator (its conjugate, with three
// antiquarks, is produced by the correlator front end for the sink side).
func Baryon(name, q1, q2, q3 string) Operator {
	return Operator{Name: name, Quarks: []Quark{Q(q1), Q(q2), Q(q3)}}
}

// Spec is a correlation-function specification.
type Spec struct {
	Name string
	// Source and Sink operators. In a correlator the source is daggered;
	// this front end expects callers to provide the quark content
	// post-conjugation, so flavors must balance across Source+Sink.
	Source, Sink []Operator
	// Momenta is the number of momentum projections per sink operator;
	// each combination produces its own graphs over distinct sink blocks.
	Momenta int
	// TensorDim and Batch shape every hadron-block tensor.
	TensorDim, Batch int
}

// Validate checks the spec is expandable: operators exist, and every
// flavor has equally many quarks and antiquarks.
func (s Spec) Validate() error {
	if len(s.Source) == 0 || len(s.Sink) == 0 {
		return errors.New("wick: spec needs source and sink operators")
	}
	if s.Momenta <= 0 {
		return errors.New("wick: Momenta must be positive")
	}
	if s.TensorDim <= 0 || s.Batch <= 0 {
		return errors.New("wick: TensorDim and Batch must be positive")
	}
	counts := map[string]int{}
	for _, op := range append(append([]Operator{}, s.Source...), s.Sink...) {
		if len(op.Quarks) == 0 {
			return fmt.Errorf("wick: operator %q has no quarks", op.Name)
		}
		for _, q := range op.Quarks {
			if q.Flavor == "" {
				return fmt.Errorf("wick: operator %q has a quark with empty flavor", op.Name)
			}
			if q.Bar {
				counts[q.Flavor]--
			} else {
				counts[q.Flavor]++
			}
		}
	}
	for f, c := range counts {
		if c != 0 {
			return fmt.Errorf("wick: flavor %q unbalanced by %d", f, c)
		}
	}
	return nil
}

// BlockKey identifies a hadron block: an operator evaluated at a momentum
// projection and a time slice.
type BlockKey struct {
	Op       string
	Momentum int
	Time     int
}

// BlockTable assigns stable tensor identities to hadron blocks so that the
// same block is the same tensor across graphs, momenta and time slices.
type BlockTable struct {
	dim, batch, rank int
	blocks           map[BlockKey]tensor.Desc
	order            []BlockKey
	next             uint64
}

// NewBlockTable creates a table of rank-2 (meson) blocks issuing tensor
// IDs from 1.
func NewBlockTable(dim, batch int) *BlockTable {
	return NewBlockTableWithRank(dim, batch, tensor.RankMeson)
}

// NewBlockTableWithRank creates a table of blocks with the given tensor
// rank: tensor.RankMeson for meson systems, tensor.RankBaryon for baryon
// systems (batched rank-3 hadron blocks).
func NewBlockTableWithRank(dim, batch, rank int) *BlockTable {
	return &BlockTable{dim: dim, batch: batch, rank: rank,
		blocks: make(map[BlockKey]tensor.Desc), next: 1}
}

// Get returns the tensor for key, creating it on first use.
func (bt *BlockTable) Get(key BlockKey) tensor.Desc {
	if d, ok := bt.blocks[key]; ok {
		return d
	}
	d := tensor.Desc{ID: bt.next, Rank: bt.rank, Dim: bt.dim, Batch: bt.batch}
	bt.next++
	bt.blocks[key] = d
	bt.order = append(bt.order, key)
	return d
}

// Tensors returns every issued block tensor in creation order.
func (bt *BlockTable) Tensors() []tensor.Desc {
	out := make([]tensor.Desc, 0, len(bt.order))
	for _, k := range bt.order {
		out = append(out, bt.blocks[k])
	}
	return out
}

// NextID returns the first unissued tensor ID (for plan intermediates).
func (bt *BlockTable) NextID() uint64 { return bt.next }

// Len returns the number of issued blocks.
func (bt *BlockTable) Len() int { return len(bt.order) }

// quarkSlot locates one quark field: which operator (global index over
// source then sink) it belongs to.
type quarkSlot struct {
	opIdx int
}

// Expand enumerates the unique contraction graphs of spec for one source
// time (srcTime) and one sink time (snkTime), issuing hadron blocks from
// bt and graph IDs from *nextGraphID (advanced as graphs are emitted).
// Pairings that self-contract within one operator or leave the diagram
// disconnected are dropped; isomorphic graphs are deduplicated.
func Expand(spec Spec, srcTime, snkTime int, bt *BlockTable, nextGraphID *int) ([]*graph.Graph, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	ops := append(append([]Operator{}, spec.Source...), spec.Sink...)
	numSrc := len(spec.Source)

	// Collect quark and antiquark slots per flavor.
	quarks := map[string][]quarkSlot{}
	antis := map[string][]quarkSlot{}
	var flavors []string
	for i, op := range ops {
		for _, q := range op.Quarks {
			m := quarks
			if q.Bar {
				m = antis
			}
			if _, ok := m[q.Flavor]; !ok && len(quarks[q.Flavor]) == 0 && len(antis[q.Flavor]) == 0 {
				flavors = append(flavors, q.Flavor)
			}
			m[q.Flavor] = append(m[q.Flavor], quarkSlot{opIdx: i})
		}
	}

	// Enumerate momentum assignments for sink operators (sources fixed at
	// momentum 0).
	var all []*graph.Graph
	momenta := make([]int, len(spec.Sink))
	var emitMomentum func(pos int) error
	emitMomentum = func(pos int) error {
		if pos == len(spec.Sink) {
			gs, err := expandPairings(spec, ops, numSrc, flavors, quarks, antis,
				srcTime, snkTime, momenta, bt, nextGraphID)
			if err != nil {
				return err
			}
			all = append(all, gs...)
			return nil
		}
		for m := 0; m < spec.Momenta; m++ {
			momenta[pos] = m
			if err := emitMomentum(pos + 1); err != nil {
				return err
			}
		}
		return nil
	}
	if err := emitMomentum(0); err != nil {
		return nil, err
	}
	return graph.Dedup(all), nil
}

// expandPairings enumerates flavor-preserving bijections and emits one
// graph per connected, self-contraction-free pairing.
func expandPairings(spec Spec, ops []Operator, numSrc int, flavors []string,
	quarks, antis map[string][]quarkSlot, srcTime, snkTime int, momenta []int,
	bt *BlockTable, nextGraphID *int) ([]*graph.Graph, error) {

	// Node tensors for this momentum/time instantiation.
	nodes := make([]graph.Node, len(ops))
	for i, op := range ops {
		key := BlockKey{Op: op.Name, Momentum: 0, Time: srcTime}
		if i >= numSrc {
			key.Momentum = momenta[i-numSrc]
			key.Time = snkTime
		}
		nodes[i] = graph.Node{ID: i, Tensor: bt.Get(key)}
	}

	var out []*graph.Graph
	edges := []graph.Edge{}
	var recurse func(fi int)
	var emit func()
	emit = func() {
		g := &graph.Graph{ID: *nextGraphID, Nodes: nodes, Edges: append([]graph.Edge(nil), edges...)}
		if !g.Connected() {
			return
		}
		*nextGraphID++
		out = append(out, g)
	}
	recurse = func(fi int) {
		if fi == len(flavors) {
			emit()
			return
		}
		f := flavors[fi]
		qs, as := quarks[f], antis[f]
		// Permute antiquark assignment over quarks.
		perm := make([]int, len(as))
		used := make([]bool, len(as))
		var permute func(k int)
		permute = func(k int) {
			if k == len(qs) {
				// Append this flavor's edges, recurse to next flavor.
				added := 0
				ok := true
				for qi, ai := range perm[:len(qs)] {
					u, v := qs[qi].opIdx, as[ai].opIdx
					if u == v {
						ok = false // self-contraction within one operator
						break
					}
					edges = append(edges, graph.Edge{U: u, V: v})
					added++
				}
				if ok {
					recurse(fi + 1)
				}
				edges = edges[:len(edges)-added]
				return
			}
			for ai := range as {
				if used[ai] {
					continue
				}
				used[ai] = true
				perm[k] = ai
				permute(k + 1)
				used[ai] = false
			}
		}
		permute(0)
	}
	recurse(0)
	return out, nil
}
