package main

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"micco"
)

// TestGoldenDeckReport pins the full text report for the bundled f0d2
// deck on four devices under the micco scheduler. The simulation is
// deterministic, so any diff here is a real behavior change: regenerate
// with
//
//	go run ./cmd/miccoreport -deck cmd/miccoreport/testdata/f0d2.deck.json \
//	    -scheduler micco -gpus 4 -o cmd/miccoreport/testdata/f0d2.report.golden.txt
func TestGoldenDeckReport(t *testing.T) {
	cfg := reportConfig{
		deck:      filepath.Join("testdata", "f0d2.deck.json"),
		scheduler: "micco",
		bounds:    "0,2,0",
		gpus:      4,
	}
	var got bytes.Buffer
	if err := run(context.Background(), cfg, &got); err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(filepath.Join("testdata", "f0d2.report.golden.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if got.String() != string(want) {
		t.Errorf("report drifted from golden.\n--- got ---\n%s\n--- want ---\n%s", got.String(), want)
	}
}

func TestJSONReportParses(t *testing.T) {
	cfg := reportConfig{
		deck:      filepath.Join("testdata", "f0d2.deck.json"),
		scheduler: "roundrobin",
		bounds:    "0,2,0",
		gpus:      2,
		jsonOut:   true,
	}
	var got bytes.Buffer
	if err := run(context.Background(), cfg, &got); err != nil {
		t.Fatal(err)
	}
	var rep micco.RunReport
	if err := json.Unmarshal(got.Bytes(), &rep); err != nil {
		t.Fatalf("JSON report does not parse: %v", err)
	}
	if rep.Scheduler != "roundrobin" || rep.Devices != 2 {
		t.Errorf("header = %q/%d, want roundrobin/2", rep.Scheduler, rep.Devices)
	}
	if rep.CriticalPath == nil || len(rep.CriticalPath.Segments) == 0 {
		t.Error("JSON report missing critical path")
	}
	if len(rep.Stages) == 0 {
		t.Error("JSON report missing stage waterfall")
	}
}

func TestDriftMode(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "d.ndjson")
	recs := []micco.DecisionRecord{
		{Stage: 0, Device: 1, Policy: "compute-centric", PredictedBytes: 100, ActualBytes: 150},
		{Stage: 0, Device: 0, Policy: "memory-centric", PredictedBytes: 200, ActualBytes: 200},
	}
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := micco.WriteDecisions(f, recs); err != nil {
		t.Fatal(err)
	}
	f.Close()

	var got bytes.Buffer
	if err := run(context.Background(), reportConfig{decisions: path}, &got); err != nil {
		t.Fatal(err)
	}
	out := got.String()
	if !strings.Contains(out, "prediction drift") {
		t.Errorf("drift report missing header:\n%s", out)
	}
	if !strings.Contains(out, "compute-centric") || !strings.Contains(out, "memory-centric") {
		t.Errorf("drift report missing policies:\n%s", out)
	}
	if strings.Contains(out, "critical path") {
		t.Errorf("drift-only report should omit the critical path:\n%s", out)
	}
}

func TestDiffMode(t *testing.T) {
	dir := t.TempDir()
	write := func(name string, snap *micco.MetricsSnapshot) string {
		path := filepath.Join(dir, name)
		raw, err := json.Marshal(snap)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, raw, 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	oldPath := write("old.json", &micco.MetricsSnapshot{
		Counters: map[string]float64{"micco_reuse_hits_total": 10, "micco_evictions_total": 3},
	})
	newPath := write("new.json", &micco.MetricsSnapshot{
		Counters: map[string]float64{"micco_reuse_hits_total": 14, "micco_evictions_total": 3},
	})
	var got bytes.Buffer
	cfg := reportConfig{diffOld: oldPath, diffNew: newPath}
	if err := run(context.Background(), cfg, &got); err != nil {
		t.Fatal(err)
	}
	out := got.String()
	if !strings.Contains(out, "micco_reuse_hits_total") {
		t.Errorf("diff missing changed series:\n%s", out)
	}
	if strings.Contains(out, "micco_evictions_total") {
		t.Errorf("diff should fold unchanged series into the count:\n%s", out)
	}
}

func TestModeValidation(t *testing.T) {
	ctx := context.Background()
	cases := []reportConfig{
		{}, // no mode at all
		{workload: "w.json", decisions: "d.ndjson"},    // two modes
		{workload: "w.json", deck: "deck.json"},        // both run inputs
		{diffOld: "old.json"},                          // half a diff
		{workload: "nosuch.json", bounds: "0,2,0"},     // missing file
		{decisions: filepath.Join("testdata", "nope")}, // missing file
		{workload: "w.json", bounds: "bad", gpus: 1},   // unparsable bounds
	}
	for i, cfg := range cases {
		if err := run(ctx, cfg, &bytes.Buffer{}); err == nil {
			t.Errorf("case %d (%+v): want error", i, cfg)
		}
	}
}
