// Command miccoreport turns a run's observability artifacts into a
// post-run analysis: the critical path through the simulated timeline
// (with per-device and per-link blame shares), the per-stage utilization
// waterfall, and a predicted-vs-actual transfer drift summary. It can
// also diff two metrics snapshots to spot regressions between runs.
//
// Usage:
//
//	miccoreport -workload w.json -scheduler micco -gpus 8
//	miccoreport -deck deck.json -scheduler locality
//	miccoreport -decisions d.ndjson
//	miccoreport -diff-old before.json -diff-new after.json
//	miccoreport -workload w.json -json -o report.json
//
// The first two forms execute the workload (or compiled correlator deck)
// on the simulated cluster and report on the fresh run; -decisions
// analyzes drift from a previously saved NDJSON decision log; -diff-old /
// -diff-new compares two -metrics snapshots. Output is deterministic for
// a given input, so reports can be golden-tested and diffed.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"micco"
	"micco/internal/obsfile"
)

// reportConfig gathers the command's flags.
type reportConfig struct {
	workload  string
	deck      string
	scheduler string
	bounds    string
	gpus      int
	memGiB    float64
	decisions string
	diffOld   string
	diffNew   string
	jsonOut   bool
	out       string
}

func main() {
	var cfg reportConfig
	flag.StringVar(&cfg.workload, "workload", "", "workload JSON file (from wgen) to run and report on")
	flag.StringVar(&cfg.deck, "deck", "", "correlator deck JSON to compile, run and report on (alternative to -workload)")
	flag.StringVar(&cfg.scheduler, "scheduler", "micco", "scheduler for run mode: "+strings.Join(micco.SchedulerNames(), ", "))
	flag.StringVar(&cfg.bounds, "bounds", "0,2,0", "reuse bounds for the micco scheduler, e.g. 0,2,0")
	flag.IntVar(&cfg.gpus, "gpus", 8, "simulated device count for run mode")
	flag.Float64Var(&cfg.memGiB, "mem", 0, "per-device pool in GiB (0 = fit the working set with 10% headroom)")
	flag.StringVar(&cfg.decisions, "decisions", "", "decision NDJSON file (from miccorun -decisions): report drift only, no run")
	flag.StringVar(&cfg.diffOld, "diff-old", "", "baseline metrics snapshot JSON for diff mode")
	flag.StringVar(&cfg.diffNew, "diff-new", "", "candidate metrics snapshot JSON for diff mode")
	flag.BoolVar(&cfg.jsonOut, "json", false, "emit the report as JSON instead of text")
	flag.StringVar(&cfg.out, "o", "", "write the report to this file (default stdout)")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, cfg, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "miccoreport:", err)
		os.Exit(1)
	}
}

// run dispatches on the mode flags and renders to out (or cfg.out).
func run(ctx context.Context, cfg reportConfig, out io.Writer) error {
	render, err := pickMode(ctx, cfg)
	if err != nil {
		return err
	}
	if cfg.out != "" {
		return obsfile.Write(cfg.out, "report", os.Stderr, render)
	}
	return render(out)
}

// pickMode validates the flag combination and returns the render function
// for the selected mode.
func pickMode(ctx context.Context, cfg reportConfig) (func(io.Writer) error, error) {
	modes := 0
	for _, on := range []bool{cfg.workload != "" || cfg.deck != "", cfg.decisions != "", cfg.diffOld != "" || cfg.diffNew != ""} {
		if on {
			modes++
		}
	}
	if modes != 1 {
		return nil, fmt.Errorf("pick one mode: -workload/-deck (run), -decisions (drift), or -diff-old/-diff-new (diff)")
	}
	switch {
	case cfg.diffOld != "" || cfg.diffNew != "":
		if cfg.diffOld == "" || cfg.diffNew == "" {
			return nil, fmt.Errorf("diff mode needs both -diff-old and -diff-new")
		}
		diff, err := diffSnapshots(cfg.diffOld, cfg.diffNew)
		if err != nil {
			return nil, err
		}
		if cfg.jsonOut {
			return diff.WriteJSON, nil
		}
		return diff.WriteText, nil
	case cfg.decisions != "":
		rep, err := driftReport(cfg.decisions)
		if err != nil {
			return nil, err
		}
		return renderer(rep, cfg.jsonOut), nil
	default:
		if cfg.workload != "" && cfg.deck != "" {
			return nil, fmt.Errorf("pick one of -workload and -deck")
		}
		rep, err := runReport(ctx, cfg)
		if err != nil {
			return nil, err
		}
		return renderer(rep, cfg.jsonOut), nil
	}
}

func renderer(rep *micco.RunReport, jsonOut bool) func(io.Writer) error {
	if jsonOut {
		return rep.WriteJSON
	}
	return rep.WriteText
}

// diffSnapshots loads two metrics snapshot files and compares them.
func diffSnapshots(oldPath, newPath string) (*micco.MetricsDiff, error) {
	load := func(path string) (*micco.MetricsSnapshot, error) {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return micco.LoadMetricsSnapshot(f)
	}
	oldSnap, err := load(oldPath)
	if err != nil {
		return nil, err
	}
	newSnap, err := load(newPath)
	if err != nil {
		return nil, err
	}
	return micco.DiffMetricsSnapshots(oldSnap, newSnap), nil
}

// driftReport builds a drift-only report from a saved decision log.
func driftReport(path string) (*micco.RunReport, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	recs, err := micco.ReadDecisions(f)
	if err != nil {
		return nil, err
	}
	if len(recs) == 0 {
		return nil, fmt.Errorf("%s holds no decision records", path)
	}
	return micco.BuildReport(micco.ReportInput{Decisions: recs}), nil
}

// loadWorkload resolves -workload or -deck into a workload and its label.
func loadWorkload(cfg reportConfig) (*micco.Workload, error) {
	if cfg.deck != "" {
		f, err := os.Open(cfg.deck)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		corr, err := micco.LoadDeck(f)
		if err != nil {
			return nil, err
		}
		build, err := corr.BuildPlan()
		if err != nil {
			return nil, err
		}
		return build.Workload, nil
	}
	raw, err := os.ReadFile(cfg.workload)
	if err != nil {
		return nil, err
	}
	var w micco.Workload
	if err := json.Unmarshal(raw, &w); err != nil {
		return nil, fmt.Errorf("parse workload: %w", err)
	}
	if len(w.Stages) == 0 {
		return nil, fmt.Errorf("workload %s has no stages", cfg.workload)
	}
	return &w, nil
}

// runReport executes the workload under full observability and assembles
// the report from the resulting trace, decisions and metrics.
func runReport(ctx context.Context, cfg reportConfig) (*micco.RunReport, error) {
	w, err := loadWorkload(cfg)
	if err != nil {
		return nil, err
	}
	b, err := parseBounds(cfg.bounds)
	if err != nil {
		return nil, err
	}
	if micco.SchedulerNeedsPredictor(cfg.scheduler) {
		return nil, fmt.Errorf("scheduler %q needs a trained predictor; use redstar or miccobench", cfg.scheduler)
	}
	s, err := micco.NewSchedulerByName(cfg.scheduler, b, nil)
	if err != nil {
		return nil, err
	}
	gcfg := micco.MI100(cfg.gpus)
	if cfg.memGiB > 0 {
		gcfg.MemoryBytes = int64(cfg.memGiB * float64(1<<30))
	} else {
		gcfg.MemoryBytes = int64(1.1 * float64(w.TotalUniqueBytes()))
	}
	cluster, err := micco.NewCluster(gcfg)
	if err != nil {
		return nil, err
	}
	reg := micco.NewMetricsRegistry()
	cluster.StartTrace()
	res, err := micco.Run(ctx, w, s, cluster, micco.RunOptions{Obs: reg})
	if err != nil {
		return nil, err
	}
	return micco.BuildReport(micco.ReportInput{
		Scheduler: cfg.scheduler,
		Workload:  w.Name,
		Devices:   cfg.gpus,
		Makespan:  res.Makespan,
		Events:    cluster.StopTrace(),
		Decisions: reg.Decisions(),
		Snapshot:  res.Metrics,
	}), nil
}

func parseBounds(s string) (micco.Bounds, error) {
	parts := strings.Split(s, ",")
	var b micco.Bounds
	if len(parts) != 3 {
		return b, fmt.Errorf("bounds %q: want three comma-separated integers", s)
	}
	for i, p := range parts {
		if _, err := fmt.Sscanf(strings.TrimSpace(p), "%d", &b[i]); err != nil {
			return b, fmt.Errorf("bounds %q: %w", s, err)
		}
		if b[i] < 0 {
			return b, fmt.Errorf("bounds %q: must be non-negative", s)
		}
	}
	return b, nil
}
