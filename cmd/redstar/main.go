// Command redstar runs the real-world correlation-function case study
// (paper Table VI): it expands the bundled a1 and f0 correlators through
// Wick contraction, stages the contraction graphs, and compares MICCO
// against the Groute baseline on the simulated eight-GPU node. With
// -numeric it additionally evaluates a scaled-down correlator with real
// complex arithmetic and prints C(t).
//
// Usage:
//
//	redstar [-function al_rhopi|f0d2|f0d4|all] [-gpus N] [-baseline NAME] [-numeric]
package main

import (
	"context"
	"flag"
	"fmt"
	"math/cmplx"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"

	"micco"
)

func main() {
	function := flag.String("function", "all", "correlator to run: al_rhopi, f0d2, f0d4, or all")
	gpus := flag.Int("gpus", 8, "simulated device count")
	numeric := flag.Bool("numeric", false, "also evaluate a scaled-down correlator numerically")
	seed := flag.Int64("seed", 2022, "random seed for the reuse-bound model and numeric data")
	model := flag.String("model", "", "load a predictor saved by miccotrain -o instead of training")
	traceOut := flag.String("trace", "", "write a Chrome trace of the MICCO run for the first function")
	deck := flag.String("deck", "", "run a correlator from a JSON deck file instead of the bundled ones")
	baseline := flag.String("baseline", "groute", "baseline scheduler to compare MICCO against: "+strings.Join(micco.SchedulerNames(), ", "))
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, *function, *gpus, *numeric, *seed, *model, *traceOut, *deck, *baseline); err != nil {
		fmt.Fprintln(os.Stderr, "redstar:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, function string, gpus int, numeric bool, seed int64, model, traceOut, deck, baseline string) error {
	var correlators []*micco.Correlator
	if deck != "" {
		f, err := os.Open(deck)
		if err != nil {
			return err
		}
		c, err := micco.LoadDeck(f)
		f.Close()
		if err != nil {
			return err
		}
		correlators = append(correlators, c)
	} else {
		for _, c := range micco.BundledCorrelators() {
			if function == "all" || c.Name == function {
				correlators = append(correlators, c)
			}
		}
		if len(correlators) == 0 {
			return fmt.Errorf("unknown function %q (have al_rhopi, f0d2, f0d4)", function)
		}
	}

	var pred *micco.Predictor
	if model != "" {
		f, err := os.Open(model)
		if err != nil {
			return err
		}
		pred, err = micco.LoadPredictor(f)
		f.Close()
		if err != nil {
			return err
		}
	} else {
		h := micco.NewHarness(micco.HarnessOptions{Seed: seed, NumGPU: gpus})
		var err error
		pred, err = h.Predictor(ctx)
		if err != nil {
			return err
		}
	}
	pred.NumGPU = gpus

	fmt.Printf("%-10s %7s %7s %8s %9s %10s %10s %8s\n",
		"function", "graphs", "blocks", "contract", "memory", baseline+" GF", "MICCO GF", "speedup")
	for ci, c := range correlators {
		start := time.Now()
		b, err := c.BuildPlan()
		if err != nil {
			return err
		}
		cfg := micco.MI100(gpus)
		cfg.MemoryBytes = 4 << 30
		cluster, err := micco.NewCluster(cfg)
		if err != nil {
			return err
		}
		// A fresh baseline instance per correlator: schedulers carry
		// per-run tie-break state.
		base, err := micco.NewSchedulerByName(baseline, micco.Bounds{}, pred)
		if err != nil {
			return err
		}
		gr, err := micco.Run(ctx, b.Workload, base, cluster, micco.RunOptions{})
		if err != nil {
			return err
		}
		if traceOut != "" && ci == 0 {
			cluster.StartTrace()
		}
		mc, err := micco.Run(ctx, b.Workload, micco.NewMICCOOptimal(pred), cluster, micco.RunOptions{})
		if err != nil {
			return err
		}
		if traceOut != "" && ci == 0 {
			events := cluster.StopTrace()
			f, err := os.Create(traceOut)
			if err != nil {
				return err
			}
			if err := micco.WriteChromeTrace(f, events); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "trace of %s (%d events) written to %s\n",
				c.Name, len(events), traceOut)
		}
		fmt.Printf("%-10s %7d %7d %8d %8.1fG %10.0f %10.0f %7.2fx   (wall %v)\n",
			c.Name, b.NumGraphs, b.Blocks, len(b.Plan.Ops),
			float64(b.Plan.TotalUniqueBytes())/(1<<30),
			gr.GFLOPS, mc.GFLOPS, micco.Speedup(mc, gr),
			time.Since(start).Round(time.Millisecond))
	}

	if numeric {
		fmt.Println("\nnumeric evaluation (scaled-down al_rhopi, random hadron blocks):")
		c := micco.A1RhoPi()
		c.TensorDim = 24
		c.Batch = 2
		c.Momenta = 2
		c.TimeSlices = 8
		b, err := c.BuildPlan()
		if err != nil {
			return err
		}
		corr, err := b.EvaluateNumeric(seed, 0)
		if err != nil {
			return err
		}
		var times []int
		for t := range corr {
			times = append(times, t)
		}
		sort.Ints(times)
		for _, t := range times {
			fmt.Printf("  C(t=%2d) = %12.4e  |C| = %.4e\n", t, corr[t], cmplx.Abs(corr[t]))
		}
	}
	return nil
}
