package main

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"micco"
)

var (
	tinyModelOnce sync.Once
	tinyModelPath string
	tinyModelErr  error
)

// tinyModel trains and saves a small predictor once for all CLI tests, so
// each test skips the full-corpus training that run() would do by default.
func tinyModel(t *testing.T) string {
	t.Helper()
	tinyModelOnce.Do(func() {
		pred, err := buildTinyCorpus()
		if err != nil {
			tinyModelErr = err
			return
		}
		tinyModelPath = filepath.Join(os.TempDir(), "micco-test-model.json")
		f, err := os.Create(tinyModelPath)
		if err != nil {
			tinyModelErr = err
			return
		}
		defer f.Close()
		tinyModelErr = pred.Save(f)
	})
	if tinyModelErr != nil {
		t.Fatal(tinyModelErr)
	}
	return tinyModelPath
}

// silence redirects stdout during f.
func silence(t *testing.T, f func() error) error {
	t.Helper()
	old := os.Stdout
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = devnull
	defer func() {
		os.Stdout = old
		devnull.Close()
	}()
	return f()
}

func TestRunUnknownFunction(t *testing.T) {
	if err := run(context.Background(), "nope", 4, false, 1, "", "", "", "groute"); err == nil {
		t.Error("unknown function: want error")
	}
}

func TestRunWithTraceOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a model")
	}
	trace := filepath.Join(t.TempDir(), "trace.json")
	err := silence(t, func() error {
		return run(context.Background(), "al_rhopi", 4, false, 7, tinyModel(t), trace, "", "groute")
	})
	if err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(trace)
	if err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(raw, &events); err != nil {
		t.Fatalf("trace is not valid Chrome JSON: %v", err)
	}
	if len(events) == 0 {
		t.Error("empty trace")
	}
}

func TestRunWithSavedModel(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a corpus")
	}
	err := silence(t, func() error {
		return run(context.Background(), "al_rhopi", 4, false, 7, tinyModel(t), "", "", "groute")
	})
	if err != nil {
		t.Fatal(err)
	}
}

// buildTinyCorpus trains a small predictor through the public API.
func buildTinyCorpus() (*micco.Predictor, error) {
	corpus, err := micco.BuildCorpus(context.Background(), micco.CorpusConfig{
		Samples: 16, Seed: 3, NumGPU: 4, Stages: 2, Batch: 2, Replicas: 1,
	})
	if err != nil {
		return nil, err
	}
	return micco.TrainPredictor(corpus, micco.ForestModel, 0.2, 3)
}

func TestRunWithDeckFile(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a model")
	}
	deck := filepath.Join(t.TempDir(), "deck.json")
	content := `{
	  "name": "custom_rho",
	  "constructions": [
	    {"name": "rho", "ops": [{"name": "rho", "quarks": [
	      {"flavor": "u"}, {"flavor": "d", "bar": true}]}]}
	  ],
	  "momenta": 2, "timeSlices": 4, "tensorDim": 32, "batch": 2
	}`
	if err := os.WriteFile(deck, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	err := silence(t, func() error {
		return run(context.Background(), "ignored", 2, false, 7, tinyModel(t), "", deck, "groute")
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(deck); err != nil {
		t.Fatal(err)
	}
	// Bad deck path errors cleanly.
	if err := run(context.Background(), "x", 2, false, 7, "", "", filepath.Join(t.TempDir(), "missing.json"), "groute"); err == nil {
		t.Error("missing deck: want error")
	}
}
