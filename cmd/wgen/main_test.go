package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestRunSummaryJSON(t *testing.T) {
	out := filepath.Join(t.TempDir(), "w.json")
	if err := run(3, 8, 64, 1, 0.5, "uniform", 1, true, out); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if doc["pairs"].(float64) != 24 {
		t.Errorf("pairs = %v, want 24", doc["pairs"])
	}
	stages, ok := doc["stages"].([]any)
	if !ok || len(stages) != 3 {
		t.Errorf("stages = %v", doc["stages"])
	}
}

func TestRunFullWorkloadJSON(t *testing.T) {
	out := filepath.Join(t.TempDir(), "full.json")
	if err := run(2, 4, 16, 1, 0.25, "gaussian", 7, false, out); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if _, ok := doc["Stages"]; !ok {
		t.Error("full dump missing Stages")
	}
}

func TestRunRejectsBadDistribution(t *testing.T) {
	if err := run(1, 1, 1, 1, 0.5, "pareto", 1, true, ""); err == nil {
		t.Error("unknown distribution: want error")
	}
}

func TestRunRejectsBadConfig(t *testing.T) {
	if err := run(0, 4, 16, 1, 0.5, "uniform", 1, true, ""); err == nil {
		t.Error("zero stages: want error")
	}
}
