// Command wgen generates synthetic many-body-correlation workloads and
// writes them as JSON, for inspection or for driving external tools.
//
// Usage:
//
//	wgen [-stages N] [-vector N] [-tensor N] [-batch N] [-rate F]
//	     [-dist uniform|gaussian] [-seed N] [-summary] [-o FILE]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"micco"
)

func main() {
	stages := flag.Int("stages", 10, "number of sequential stages")
	vector := flag.Int("vector", 64, "tensors per vector (pairs per stage)")
	dim := flag.Int("tensor", 384, "tensor mode length")
	batch := flag.Int("batch", 8, "batched instances per hadron node")
	rate := flag.Float64("rate", 0.5, "target repeated rate in [0,1]")
	dist := flag.String("dist", "uniform", "repeated-data distribution: uniform or gaussian")
	seed := flag.Int64("seed", 1, "generation seed")
	summary := flag.Bool("summary", false, "emit only summary statistics, not the pair stream")
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	if err := run(*stages, *vector, *dim, *batch, *rate, *dist, *seed, *summary, *out); err != nil {
		fmt.Fprintln(os.Stderr, "wgen:", err)
		os.Exit(1)
	}
}

func run(stages, vector, dim, batch int, rate float64, dist string, seed int64, summary bool, out string) error {
	var d micco.Distribution
	switch dist {
	case "uniform":
		d = micco.Uniform
	case "gaussian":
		d = micco.Gaussian
	default:
		return fmt.Errorf("unknown distribution %q", dist)
	}
	w, err := micco.GenerateWorkload(micco.WorkloadConfig{
		Seed: seed, Stages: stages, VectorSize: vector, TensorDim: dim,
		Batch: batch, Rank: micco.RankMeson, RepeatRate: rate, Dist: d,
	})
	if err != nil {
		return err
	}
	var sink io.Writer = os.Stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		sink = f
	}
	enc := json.NewEncoder(sink)
	enc.SetIndent("", "  ")
	if summary {
		type stageSummary struct {
			Index      int
			Pairs      int
			RepeatRate float64
		}
		var ss []stageSummary
		for _, st := range w.Stages {
			ss = append(ss, stageSummary{st.Index, len(st.Pairs), st.RepeatRate})
		}
		return enc.Encode(map[string]any{
			"name":               w.Name,
			"pairs":              w.NumPairs(),
			"uniqueInputs":       len(w.Inputs),
			"outputs":            len(w.Outputs),
			"totalFLOPs":         w.TotalFLOPs(),
			"totalUniqueBytes":   w.TotalUniqueBytes(),
			"measuredRepeatRate": w.MeasuredRepeatRate(),
			"stages":             ss,
		})
	}
	return enc.Encode(w)
}
