// Command benchjson converts `go test -bench -benchmem` output into a
// JSON metrics file while teeing the raw text through unchanged, so it
// can sit in a pipeline:
//
//	go test -bench Contraction -benchmem -run '^$' . | benchjson -o BENCH_kernel.json
//
// The JSON document maps each benchmark name (GOMAXPROCS suffix stripped)
// to its metrics: ns/op, and when present B/op, allocs/op, and any custom
// b.ReportMetric units.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

func main() {
	out := flag.String("o", "", "JSON output file (default stdout, after the teed text)")
	flag.Parse()

	if err := run(os.Stdin, os.Stdout, *out); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// run tees bench output from in to tee and writes the parsed metrics as
// JSON to outPath (or to tee when outPath is empty).
func run(in io.Reader, tee io.Writer, outPath string) error {
	metrics := make(map[string]map[string]float64)
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Fprintln(tee, line)
		if m, name := parseLine(line); m != nil {
			metrics[name] = m
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if len(metrics) == 0 {
		return fmt.Errorf("no benchmark result lines found")
	}
	doc, err := json.MarshalIndent(metrics, "", "  ")
	if err != nil {
		return err
	}
	doc = append(doc, '\n')
	if outPath == "" {
		_, err = tee.Write(doc)
		return err
	}
	return os.WriteFile(outPath, doc, 0o644)
}

// parseLine extracts the metrics from one benchmark result line, e.g.
//
//	BenchmarkContractionKernel-4   100   14204604 ns/op   5 allocs/op
//
// returning nil for non-result lines.
func parseLine(line string) (map[string]float64, string) {
	f := strings.Fields(line)
	if len(f) < 4 || !strings.HasPrefix(f[0], "Benchmark") {
		return nil, ""
	}
	if _, err := strconv.ParseInt(f[1], 10, 64); err != nil {
		return nil, "" // second field must be the iteration count
	}
	m := make(map[string]float64)
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return nil, ""
		}
		m[f[i+1]] = v
	}
	if _, ok := m["ns/op"]; !ok {
		return nil, ""
	}
	return m, stripProcs(f[0])
}

// stripProcs removes the trailing -GOMAXPROCS suffix Go appends to
// benchmark names, keeping sub-benchmark paths intact.
func stripProcs(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}
