// Command benchjson converts `go test -bench -benchmem` output into a
// JSON metrics file while teeing the raw text through unchanged, so it
// can sit in a pipeline:
//
//	go test -bench Contraction -benchmem -run '^$' . | benchjson -o BENCH_kernel.json
//
// The JSON document maps each benchmark name (GOMAXPROCS suffix stripped)
// to its metrics: ns/op, and when present B/op, allocs/op, and any custom
// b.ReportMetric units. With -extra, a metrics snapshot (as written by
// miccorun -metrics) is flattened into the document under the "_metrics"
// key, so one BENCH_*.json carries both benchmark timings and the run's
// observability counters. With -baseline, a previously recorded benchjson
// document is merged under the "_baseline" key, so the file shows current
// numbers next to the reference they are compared against.
//
// With -guard, benchjson runs as a checker instead of a recorder: it reads
// the named document (stdin is ignored) and fails when a guarded benchmark
// regressed — any entry matching -guard-prefix (observability-on "/obs"
// variants excepted) reporting allocs/op above -guard-max-allocs, or ns/op
// beyond -guard-tol times its "_baseline/" entry in the same document:
//
//	benchjson -guard BENCH_sched.json -guard-tol 2.0
//	benchjson -guard BENCH_kernel.json -guard-prefix BenchmarkContraction \
//	    -guard-max-allocs -1 -guard-tol 2.5
//
// The defaults guard the scheduler placement hot path
// (BenchmarkSchedulerAssign*, zero allocations). A negative
// -guard-max-allocs disables the allocation check, leaving only the
// ns/op-versus-baseline comparison — the right setting for kernel
// throughput documents whose benchmarks legitimately allocate. Entries
// without a baseline are reported and skipped (first recording of a new
// benchmark); a guard run that finds no entries to check fails.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"strings"

	"micco"
)

func main() {
	out := flag.String("o", "", "JSON output file (default stdout, after the teed text)")
	procs := flag.Int("procs", runtime.GOMAXPROCS(0),
		"GOMAXPROCS of the go test run; only the matching -N name suffix is stripped (at 1, go test emits no suffix and nothing is stripped)")
	extra := flag.String("extra", "", "metrics snapshot JSON (from miccorun -metrics) to merge under the _metrics key")
	baseline := flag.String("baseline", "", "prior benchjson document to merge under the _baseline key")
	guard := flag.String("guard", "", "benchjson document to check for benchmark regressions (no recording; stdin ignored)")
	guardTol := flag.Float64("guard-tol", 2.0, "with -guard, the allowed ns/op growth factor over the document's _baseline entries")
	guardPre := flag.String("guard-prefix", defaultGuardPrefix, "with -guard, the benchmark name prefix selecting the guarded entries")
	guardAllocs := flag.Float64("guard-max-allocs", 0, "with -guard, the allowed allocs/op per guarded entry (negative disables the allocation check)")
	flag.Parse()

	if *guard != "" {
		if err := runGuard(os.Stderr, *guard, *guardTol, *guardPre, *guardAllocs); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(os.Stdin, os.Stdout, os.Stderr, *out, *procs, *extra, *baseline); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// defaultGuardPrefix selects the entries the guard checks by default: the
// scheduler placement benchmarks (per-decision and large-cluster variants).
const defaultGuardPrefix = "BenchmarkSchedulerAssign"

// runGuard checks the recorded benchmarks matching prefix in the document
// at path: at most maxAllocs allocations per op (negative disables the
// check), and ns/op within tol times the document's own "_baseline/"
// entry. Observability-on variants (names containing "/obs") are exempt
// from the allocation check — a live DecisionRecord legitimately
// allocates. Entries without a baseline are noted on w and skipped; zero
// checkable entries is itself an error (the guard would be vacuous).
func runGuard(w io.Writer, path string, tol float64, prefix string, maxAllocs float64) error {
	doc, err := loadBaseline(path) // same shape; baseline-prefix pruning is harmless here
	if err != nil {
		return err
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var full map[string]map[string]float64
	if err := json.Unmarshal(raw, &full); err != nil {
		return fmt.Errorf("parse %s: %w", path, err)
	}
	if tol <= 0 {
		return fmt.Errorf("guard tolerance must be positive, got %g", tol)
	}
	if prefix == "" {
		return fmt.Errorf("guard prefix must be non-empty")
	}
	checked := 0
	var failures []string
	for name, m := range doc {
		if !strings.HasPrefix(name, prefix) || strings.Contains(name, "/obs") {
			continue
		}
		checked++
		if a := m["allocs/op"]; maxAllocs >= 0 && a > maxAllocs {
			failures = append(failures, fmt.Sprintf("%s: %g allocs/op, want <= %g (guarded hot path)", name, a, maxAllocs))
		}
		base, ok := full["_baseline/"+name]
		if !ok {
			fmt.Fprintf(w, "benchjson: note: %s has no _baseline entry, ns/op unchecked\n", name)
			continue
		}
		if bn := base["ns/op"]; bn > 0 && m["ns/op"] > tol*bn {
			failures = append(failures, fmt.Sprintf("%s: %g ns/op exceeds %gx baseline %g", name, m["ns/op"], tol, bn))
		}
	}
	if checked == 0 {
		return fmt.Errorf("%s holds no %s* entries; the guard checked nothing", path, prefix)
	}
	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Fprintln(w, "benchjson: FAIL:", f)
		}
		return fmt.Errorf("%d regression(s) in %s", len(failures), path)
	}
	fmt.Fprintf(w, "benchjson: guard ok: %d %s* entries within bounds\n", checked, prefix)
	return nil
}

// run tees bench output from in to tee and writes the parsed metrics as
// JSON to outPath (or to tee when outPath is empty). procs is the
// GOMAXPROCS value the benchmarks ran under, used to recognize the name
// suffix. extraPath optionally names a metrics snapshot to merge in;
// baselinePath optionally names a prior document to keep alongside — a
// missing or malformed baseline degrades to a warning on errw (recording
// fresh numbers must not fail just because no reference exists yet).
func run(in io.Reader, tee, errw io.Writer, outPath string, procs int, extraPath, baselinePath string) error {
	metrics := make(map[string]map[string]float64)
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Fprintln(tee, line)
		if m, name := parseLine(line, procs); m != nil {
			metrics[name] = m
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if len(metrics) == 0 {
		return fmt.Errorf("no benchmark result lines found")
	}
	if extraPath != "" {
		flat, err := loadExtra(extraPath)
		if err != nil {
			return err
		}
		metrics["_metrics"] = flat
	}
	if baselinePath != "" {
		base, err := loadBaseline(baselinePath)
		if err != nil {
			fmt.Fprintf(errw, "benchjson: warning: baseline unusable, recording without it: %v\n", err)
		} else {
			for name, m := range base {
				metrics["_baseline/"+name] = m
			}
		}
	}
	doc, err := json.MarshalIndent(metrics, "", "  ")
	if err != nil {
		return err
	}
	doc = append(doc, '\n')
	if outPath == "" {
		_, err = tee.Write(doc)
		return err
	}
	return os.WriteFile(outPath, doc, 0o644)
}

// loadExtra reads a metrics snapshot and flattens it into one numeric map:
// counters and gauges keep their series names, each histogram contributes
// its <name>_sum and <name>_count.
func loadExtra(path string) (map[string]float64, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var snap micco.MetricsSnapshot
	if err := json.Unmarshal(raw, &snap); err != nil {
		return nil, fmt.Errorf("parse %s: %w", path, err)
	}
	flat := make(map[string]float64, len(snap.Counters)+len(snap.Gauges)+2*len(snap.Histograms))
	for name, v := range snap.Counters {
		flat[name] = v
	}
	for name, v := range snap.Gauges {
		flat[name] = v
	}
	for name, h := range snap.Histograms {
		flat[name+"_sum"] = h.Sum
		flat[name+"_count"] = float64(h.Count)
	}
	return flat, nil
}

// loadBaseline reads a prior benchjson document. Entries that are already
// baseline- or metrics-prefixed are dropped so re-recording against an
// annotated document never nests baselines.
func loadBaseline(path string) (map[string]map[string]float64, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc map[string]map[string]float64
	if err := json.Unmarshal(raw, &doc); err != nil {
		return nil, fmt.Errorf("parse %s: %w", path, err)
	}
	for name := range doc {
		if strings.HasPrefix(name, "_baseline/") || name == "_metrics" {
			delete(doc, name)
		}
	}
	return doc, nil
}

// parseLine extracts the metrics from one benchmark result line, e.g.
//
//	BenchmarkContractionKernel-4   100   14204604 ns/op   5 allocs/op
//
// returning nil for non-result lines.
func parseLine(line string, procs int) (map[string]float64, string) {
	f := strings.Fields(line)
	if len(f) < 4 || !strings.HasPrefix(f[0], "Benchmark") {
		return nil, ""
	}
	if _, err := strconv.ParseInt(f[1], 10, 64); err != nil {
		return nil, "" // second field must be the iteration count
	}
	m := make(map[string]float64)
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return nil, ""
		}
		m[f[i+1]] = v
	}
	if _, ok := m["ns/op"]; !ok {
		return nil, ""
	}
	return m, stripProcs(f[0], procs)
}

// stripProcs removes the trailing -GOMAXPROCS suffix Go appends to
// benchmark names, keeping sub-benchmark paths intact. Only the exact
// "-<procs>" suffix is removed: go test appends it solely when GOMAXPROCS
// != 1, so at procs == 1 names are kept verbatim and a sub-benchmark that
// legitimately ends in a number (e.g. BenchmarkX/dim-128) is never
// truncated into colliding with a sibling.
func stripProcs(name string, procs int) string {
	if procs <= 1 {
		return name
	}
	return strings.TrimSuffix(name, "-"+strconv.Itoa(procs))
}
