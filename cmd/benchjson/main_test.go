package main

import (
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: micco
cpu: some CPU
BenchmarkContractionKernel-4        	     100	  14204604 ns/op	 1048600 B/op	       5 allocs/op
BenchmarkContractionKernelInto-4    	     355	   3356826 ns/op	      96 B/op	       2 allocs/op
BenchmarkAblationPeerFetch/PeerFetch-4 	      12	  98765432 ns/op	       421.5 simGFLOPS
PASS
ok  	micco	4.2s
`

func TestRunParsesAndTees(t *testing.T) {
	out := filepath.Join(t.TempDir(), "bench.json")
	var tee strings.Builder
	if err := run(strings.NewReader(sample), &tee, io.Discard, out, 4, "", ""); err != nil {
		t.Fatal(err)
	}
	if tee.String() != sample {
		t.Error("teed output does not match input")
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]map[string]float64
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	k := doc["BenchmarkContractionKernel"]
	if k["ns/op"] != 14204604 || k["allocs/op"] != 5 || k["B/op"] != 1048600 {
		t.Errorf("kernel metrics = %v", k)
	}
	if doc["BenchmarkContractionKernelInto"]["allocs/op"] != 2 {
		t.Errorf("into metrics = %v", doc["BenchmarkContractionKernelInto"])
	}
	sub := doc["BenchmarkAblationPeerFetch/PeerFetch"]
	if sub["simGFLOPS"] != 421.5 {
		t.Errorf("custom metric = %v", sub)
	}
}

func TestRunJSONToStdout(t *testing.T) {
	var tee strings.Builder
	if err := run(strings.NewReader(sample), &tee, io.Discard, "", 4, "", ""); err != nil {
		t.Fatal(err)
	}
	// The JSON document follows the teed text.
	rest := strings.TrimPrefix(tee.String(), sample)
	var doc map[string]map[string]float64
	if err := json.Unmarshal([]byte(rest), &doc); err != nil {
		t.Fatalf("stdout JSON invalid: %v", err)
	}
	if len(doc) != 3 {
		t.Errorf("parsed %d benchmarks, want 3", len(doc))
	}
}

func TestRunMergesExtraMetrics(t *testing.T) {
	dir := t.TempDir()
	extra := filepath.Join(dir, "metrics.json")
	snapJSON := `{
	  "counters": {"micco_sim_flops_total": 123, "micco_sched_overhead_seconds_total": 0.5},
	  "gauges": {"micco_run_makespan_seconds": 1.75},
	  "histograms": {"micco_sim_seconds{kind=\"h2d\"}": {
	    "buckets": [{"le": "+Inf", "count": 2}], "sum": 0.25, "count": 2}}
	}`
	if err := os.WriteFile(extra, []byte(snapJSON), 0o644); err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(dir, "bench.json")
	var tee strings.Builder
	if err := run(strings.NewReader(sample), &tee, io.Discard, out, 4, extra, ""); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]map[string]float64
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	m := doc["_metrics"]
	if m == nil {
		t.Fatalf("no _metrics key in %v", doc)
	}
	if m["micco_sim_flops_total"] != 123 || m["micco_run_makespan_seconds"] != 1.75 {
		t.Errorf("_metrics = %v", m)
	}
	if m[`micco_sim_seconds{kind="h2d"}_sum`] != 0.25 || m[`micco_sim_seconds{kind="h2d"}_count`] != 2 {
		t.Errorf("histogram flattening = %v", m)
	}
	// Benchmark entries survive alongside the merge.
	if doc["BenchmarkContractionKernel"]["ns/op"] != 14204604 {
		t.Errorf("benchmark entries lost: %v", doc)
	}
}

func TestRunExtraErrors(t *testing.T) {
	var tee strings.Builder
	if err := run(strings.NewReader(sample), &tee, io.Discard, "", 4, "/nonexistent-metrics.json", ""); err == nil {
		t.Error("missing extra file: want error")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	tee.Reset()
	if err := run(strings.NewReader(sample), &tee, io.Discard, "", 4, bad, ""); err == nil {
		t.Error("unparsable extra file: want error")
	}
}

func TestRunMergesBaseline(t *testing.T) {
	dir := t.TempDir()
	base := filepath.Join(dir, "base.json")
	// A prior document with a plain entry plus entries the merge must drop:
	// an old baseline annotation and a metrics snapshot.
	prior := `{
  "BenchmarkContractionKernel": {"ns/op": 99, "allocs/op": 7},
  "_baseline/BenchmarkContractionKernel": {"ns/op": 200},
  "_metrics": {"micco_counter": 3}
}`
	if err := os.WriteFile(base, []byte(prior), 0o644); err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(dir, "bench.json")
	var tee strings.Builder
	if err := run(strings.NewReader(sample), &tee, io.Discard, out, 4, "", base); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]map[string]float64
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	if doc["BenchmarkContractionKernel"]["ns/op"] != 14204604 {
		t.Error("current metrics missing or overwritten by baseline")
	}
	got := doc["_baseline/BenchmarkContractionKernel"]
	if got["ns/op"] != 99 || got["allocs/op"] != 7 {
		t.Errorf("baseline entry = %v, want ns/op 99, allocs/op 7", got)
	}
	for name := range doc {
		if name == "_baseline/_metrics" || strings.HasPrefix(name, "_baseline/_baseline/") {
			t.Errorf("merge kept non-benchmark baseline entry %q", name)
		}
	}

}

// TestRunBaselineDegradesGracefully: a missing or malformed -baseline file
// must warn and record the fresh numbers without the _baseline annotation,
// not abort — the first recording of a benchmark has no reference yet.
func TestRunBaselineDegradesGracefully(t *testing.T) {
	dir := t.TempDir()
	check := func(t *testing.T, baseline, wantWarn string) {
		out := filepath.Join(dir, "bench.json")
		var tee, warn strings.Builder
		if err := run(strings.NewReader(sample), &tee, &warn, out, 4, "", baseline); err != nil {
			t.Fatalf("unusable baseline should not fail the run: %v", err)
		}
		if !strings.Contains(warn.String(), "warning") || !strings.Contains(warn.String(), wantWarn) {
			t.Errorf("warning = %q, want mention of %q", warn.String(), wantWarn)
		}
		raw, err := os.ReadFile(out)
		if err != nil {
			t.Fatal(err)
		}
		var doc map[string]map[string]float64
		if err := json.Unmarshal(raw, &doc); err != nil {
			t.Fatal(err)
		}
		if doc["BenchmarkContractionKernel"]["ns/op"] != 14204604 {
			t.Error("fresh metrics missing despite unusable baseline")
		}
		for name := range doc {
			if strings.HasPrefix(name, "_baseline/") {
				t.Errorf("unusable baseline still produced entry %q", name)
			}
		}
	}
	t.Run("missing", func(t *testing.T) {
		check(t, filepath.Join(dir, "missing.json"), "missing.json")
	})
	t.Run("malformed", func(t *testing.T) {
		bad := filepath.Join(dir, "bad.json")
		if err := os.WriteFile(bad, []byte("not json"), 0o644); err != nil {
			t.Fatal(err)
		}
		check(t, bad, "bad.json")
	})
}

// writeGuardDoc writes a benchjson document for guard tests and returns
// its path.
func writeGuardDoc(t *testing.T, doc string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestGuardPasses(t *testing.T) {
	path := writeGuardDoc(t, `{
  "BenchmarkSchedulerAssign/MICCO(0,2,0)": {"ns/op": 150, "allocs/op": 0},
  "BenchmarkSchedulerAssign/MICCO(0,2,0)/obs": {"ns/op": 400, "allocs/op": 3},
  "BenchmarkSchedulerAssignLarge/Hier/devs=4096": {"ns/op": 650, "allocs/op": 0},
  "BenchmarkRunScheduleOnly/MICCO/obs=off": {"ns/op": 9e9, "allocs/op": 12345},
  "_baseline/BenchmarkSchedulerAssign/MICCO(0,2,0)": {"ns/op": 140},
  "_baseline/BenchmarkSchedulerAssignLarge/Hier/devs=4096": {"ns/op": 600}
}`)
	var w strings.Builder
	if err := runGuard(&w, path, 2.0, defaultGuardPrefix, 0); err != nil {
		t.Fatalf("clean document failed the guard: %v\n%s", err, w.String())
	}
	// The /obs variant (allocates by design) and non-Assign benchmarks must
	// not have been counted among the checked entries.
	if !strings.Contains(w.String(), "2 BenchmarkSchedulerAssign* entries") {
		t.Errorf("guard summary = %q, want 2 entries checked", w.String())
	}
}

func TestGuardFailsOnAllocs(t *testing.T) {
	path := writeGuardDoc(t, `{
  "BenchmarkSchedulerAssign/MICCO(0,2,0)": {"ns/op": 150, "allocs/op": 1},
  "_baseline/BenchmarkSchedulerAssign/MICCO(0,2,0)": {"ns/op": 140}
}`)
	var w strings.Builder
	err := runGuard(&w, path, 2.0, defaultGuardPrefix, 0)
	if err == nil {
		t.Fatal("allocating hot path passed the guard")
	}
	if !strings.Contains(w.String(), "allocs/op") {
		t.Errorf("failure output = %q, want allocs/op mention", w.String())
	}
}

func TestGuardFailsOnSlowdown(t *testing.T) {
	path := writeGuardDoc(t, `{
  "BenchmarkSchedulerAssign/MICCO(0,2,0)": {"ns/op": 500, "allocs/op": 0},
  "_baseline/BenchmarkSchedulerAssign/MICCO(0,2,0)": {"ns/op": 140}
}`)
	var w strings.Builder
	if err := runGuard(&w, path, 2.0, defaultGuardPrefix, 0); err == nil {
		t.Fatal("3.6x slowdown passed a 2x guard")
	}
	// The same numbers under a forgiving tolerance must pass.
	w.Reset()
	if err := runGuard(&w, path, 4.0, defaultGuardPrefix, 0); err != nil {
		t.Fatalf("3.6x slowdown failed a 4x guard: %v", err)
	}
}

func TestGuardMissingBaselineWarnsAndSkips(t *testing.T) {
	path := writeGuardDoc(t, `{
  "BenchmarkSchedulerAssign/NewScheduler": {"ns/op": 9e9, "allocs/op": 0}
}`)
	var w strings.Builder
	if err := runGuard(&w, path, 2.0, defaultGuardPrefix, 0); err != nil {
		t.Fatalf("entry without baseline must pass (first recording): %v", err)
	}
	if !strings.Contains(w.String(), "no _baseline entry") {
		t.Errorf("output = %q, want a note about the missing baseline", w.String())
	}
}

// TestGuardKernelPrefix: -guard-prefix retargets the guard at the
// contraction-kernel document, and -guard-max-allocs -1 disables the
// allocation check (kernel benchmarks legitimately allocate) while the
// ns/op-versus-baseline comparison still bites.
func TestGuardKernelPrefix(t *testing.T) {
	path := writeGuardDoc(t, `{
  "BenchmarkContractionKernel": {"ns/op": 3.3e6, "allocs/op": 2},
  "BenchmarkContractionKernelFast": {"ns/op": 1.6e6, "allocs/op": 2},
  "BenchmarkSchedulerAssign/MICCO": {"ns/op": 9e9, "allocs/op": 99},
  "_baseline/BenchmarkContractionKernel": {"ns/op": 3.2e6},
  "_baseline/BenchmarkContractionKernelFast": {"ns/op": 1.5e6}
}`)
	var w strings.Builder
	if err := runGuard(&w, path, 2.5, "BenchmarkContraction", -1); err != nil {
		t.Fatalf("healthy kernel document failed the guard: %v\n%s", err, w.String())
	}
	if !strings.Contains(w.String(), "2 BenchmarkContraction* entries") {
		t.Errorf("guard summary = %q, want 2 kernel entries checked", w.String())
	}
	// With the allocation check on, the same document must fail.
	w.Reset()
	if err := runGuard(&w, path, 2.5, "BenchmarkContraction", 0); err == nil {
		t.Fatal("allocating kernel entries passed a zero-alloc guard")
	}
	// A kernel slowdown beyond tolerance must fail even with allocs off.
	slow := writeGuardDoc(t, `{
  "BenchmarkContractionKernel": {"ns/op": 9e6, "allocs/op": 2},
  "_baseline/BenchmarkContractionKernel": {"ns/op": 3.2e6}
}`)
	if err := runGuard(io.Discard, slow, 2.5, "BenchmarkContraction", -1); err == nil {
		t.Fatal("2.8x kernel slowdown passed a 2.5x guard")
	}
}

func TestGuardErrors(t *testing.T) {
	t.Run("no-entries", func(t *testing.T) {
		path := writeGuardDoc(t, `{"BenchmarkContractionKernel": {"ns/op": 1, "allocs/op": 0}}`)
		if err := runGuard(io.Discard, path, 2.0, defaultGuardPrefix, 0); err == nil {
			t.Error("document without scheduler entries passed a vacuous guard")
		}
	})
	t.Run("missing-file", func(t *testing.T) {
		if err := runGuard(io.Discard, filepath.Join(t.TempDir(), "missing.json"), 2.0, defaultGuardPrefix, 0); err == nil {
			t.Error("missing document: want error")
		}
	})
	t.Run("malformed", func(t *testing.T) {
		path := writeGuardDoc(t, "not json")
		if err := runGuard(io.Discard, path, 2.0, defaultGuardPrefix, 0); err == nil {
			t.Error("malformed document: want error")
		}
	})
	t.Run("bad-tolerance", func(t *testing.T) {
		path := writeGuardDoc(t, `{"BenchmarkSchedulerAssign/X": {"ns/op": 1, "allocs/op": 0}}`)
		if err := runGuard(io.Discard, path, 0, defaultGuardPrefix, 0); err == nil {
			t.Error("zero tolerance: want error")
		}
	})
}

func TestRunRejectsEmptyInput(t *testing.T) {
	var tee strings.Builder
	if err := run(strings.NewReader("no benchmarks here\n"), &tee, io.Discard, "", 4, "", ""); err == nil {
		t.Error("input without results: want error")
	}
}

func TestParseLineRejectsNonResults(t *testing.T) {
	for _, line := range []string{
		"",
		"PASS",
		"BenchmarkBroken-4 notanumber 12 ns/op",
		"BenchmarkNoNs-4 100 12 B/op",
		"goos: linux",
	} {
		if m, _ := parseLine(line, 4); m != nil {
			t.Errorf("parseLine(%q) = %v, want nil", line, m)
		}
	}
}

func TestStripProcs(t *testing.T) {
	cases := []struct {
		name  string
		procs int
		want  string
	}{
		{"BenchmarkX-8", 8, "BenchmarkX"},
		{"BenchmarkX", 8, "BenchmarkX"},
		{"BenchmarkX/sub-case-4", 4, "BenchmarkX/sub-case"},
		{"BenchmarkX/sub-case", 4, "BenchmarkX/sub-case"},
		// Only the exact -procs suffix is recognized: at GOMAXPROCS=1 go
		// test emits no suffix, so numeric-tailed names must stay intact.
		{"BenchmarkX/dim-128", 1, "BenchmarkX/dim-128"},
		{"BenchmarkX/dim-128", 4, "BenchmarkX/dim-128"},
		{"BenchmarkX-16", 8, "BenchmarkX-16"},
	}
	for _, c := range cases {
		if got := stripProcs(c.name, c.procs); got != c.want {
			t.Errorf("stripProcs(%q, %d) = %q, want %q", c.name, c.procs, got, c.want)
		}
	}
}

// TestRunGOMAXPROCS1NoCollision reproduces the failure mode the suffix
// heuristic used to have: at GOMAXPROCS=1 the names carry no suffix, and
// sub-benchmarks ending in distinct numbers must stay distinct keys.
func TestRunGOMAXPROCS1NoCollision(t *testing.T) {
	in := "BenchmarkX/dim-64 \t 10\t 100 ns/op\nBenchmarkX/dim-128 \t 10\t 200 ns/op\n"
	var tee strings.Builder
	if err := run(strings.NewReader(in), &tee, io.Discard, "", 1, "", ""); err != nil {
		t.Fatal(err)
	}
	rest := strings.TrimPrefix(tee.String(), in)
	var doc map[string]map[string]float64
	if err := json.Unmarshal([]byte(rest), &doc); err != nil {
		t.Fatalf("stdout JSON invalid: %v", err)
	}
	if len(doc) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2 (keys: %v)", len(doc), doc)
	}
	if doc["BenchmarkX/dim-64"]["ns/op"] != 100 || doc["BenchmarkX/dim-128"]["ns/op"] != 200 {
		t.Errorf("metrics misattributed: %v", doc)
	}
}
