// Command miccorun executes a workload file (as produced by wgen) on the
// simulated multi-GPU cluster under a chosen scheduler, completing the
// generate -> schedule -> measure toolchain.
//
// Usage:
//
//	wgen -stages 10 -vector 64 -o w.json
//	miccorun -workload w.json -scheduler micco -gpus 8
//	miccorun -workload w.json -scheduler groute -compare
//	miccorun -workload w.json -metrics m.json -decisions d.ndjson
//	miccorun -workload w.json -faults plan.json
//	miccorun -workload w.json -numeric -fast-kernels
//	miccorun -workload w.json -serve :9090
//	miccorun -workload w.json -checkpoint-dir ckpt -supervise -stall-budget 30s
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"micco"
	"micco/internal/obsfile"
)

// runConfig gathers the command's flags.
type runConfig struct {
	workload     string
	scheduler    string
	bounds       string
	gpus         int
	memGiB       float64
	compare      bool
	traceOut     string
	metricsOut   string
	decisionsOut string
	faultsIn     string
	numeric      bool
	numericSeed  int64
	numericPar   int
	fastKernels  bool
	serveAddr    string
	ckptDir      string
	ckptEvery    int
	supervise    bool
	stallBudget  time.Duration
}

func main() {
	var cfg runConfig
	flag.StringVar(&cfg.workload, "workload", "", "workload JSON file (from wgen); required")
	flag.StringVar(&cfg.scheduler, "scheduler", "micco", "scheduler: "+strings.Join(micco.SchedulerNames(), ", "))
	flag.StringVar(&cfg.bounds, "bounds", "0,2,0", "reuse bounds for the micco scheduler, e.g. 0,2,0")
	flag.IntVar(&cfg.gpus, "gpus", 8, "simulated device count")
	flag.Float64Var(&cfg.memGiB, "mem", 0, "per-device pool in GiB (0 = fit the working set with 10% headroom)")
	flag.BoolVar(&cfg.compare, "compare", false, "also run every other scheduler and report speedups")
	flag.StringVar(&cfg.traceOut, "trace", "", "write a Chrome trace of the primary run")
	flag.StringVar(&cfg.metricsOut, "metrics", "", "write a JSON metrics snapshot of the primary run")
	flag.StringVar(&cfg.decisionsOut, "decisions", "", "write per-placement decision records as NDJSON")
	flag.StringVar(&cfg.faultsIn, "faults", "", "fault-injection plan JSON: replay device loss, link degradation and transient failures into the run")
	flag.BoolVar(&cfg.numeric, "numeric", false, "execute every contraction with real complex128 arithmetic alongside the simulation and report the numeric fingerprint (expensive; small workloads)")
	flag.Int64Var(&cfg.numericSeed, "numeric-seed", 1, "seed for the numeric input data")
	flag.IntVar(&cfg.numericPar, "numeric-parallel", 0, "with -numeric, worker-pool size for the parallel fused pipeline: 1 = serial fused engine, >1 = dependency-level batches across that many cooperative workers (0 = GOMAXPROCS); the exact-tier fingerprint is identical at every size")
	flag.BoolVar(&cfg.fastKernels, "fast-kernels", false, "with -numeric, run the FMA/AVX-512 fast kernel tier (ULP-bounded, not bit-identical to exact-mode fingerprints)")
	flag.StringVar(&cfg.serveAddr, "serve", "", "serve live observability HTTP on this address (e.g. :9090): /metrics, /metrics.json, /decisions, /trace, /flight, /healthz, /debug/pprof; keeps serving after the run until interrupted")
	flag.StringVar(&cfg.ckptDir, "checkpoint-dir", "", "persist durable stage-boundary checkpoints in this directory (atomic write + fsync); a run interrupted or killed resumes from the file on the next -supervise invocation")
	flag.IntVar(&cfg.ckptEvery, "checkpoint-every", 0, "with -checkpoint-dir, write the durable file only at every Nth stage boundary plus the final one (<=1 = every boundary)")
	flag.BoolVar(&cfg.supervise, "supervise", false, "run under the self-healing supervisor: retry cluster loss, contained worker panics and watchdog-detected stalls from the last checkpoint with capped exponential backoff; with -checkpoint-dir, resume a dead process's run from disk first")
	flag.DurationVar(&cfg.stallBudget, "stall-budget", 0, "with -supervise, arm the progress watchdog: cancel and resume the run if no pair completes within this wall budget (e.g. 30s; 0 = watchdog off)")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, cfg); err != nil {
		fmt.Fprintln(os.Stderr, "miccorun:", err)
		os.Exit(1)
	}
}

func parseBounds(s string) (micco.Bounds, error) {
	parts := strings.Split(s, ",")
	var b micco.Bounds
	if len(parts) != 3 {
		return b, fmt.Errorf("bounds %q: want three comma-separated integers", s)
	}
	for i, p := range parts {
		if _, err := fmt.Sscanf(strings.TrimSpace(p), "%d", &b[i]); err != nil {
			return b, fmt.Errorf("bounds %q: %w", s, err)
		}
		if b[i] < 0 {
			return b, fmt.Errorf("bounds %q: must be non-negative", s)
		}
	}
	return b, nil
}

func run(ctx context.Context, rc runConfig) error {
	if rc.workload == "" {
		return fmt.Errorf("-workload is required")
	}
	raw, err := os.ReadFile(rc.workload)
	if err != nil {
		return err
	}
	var w micco.Workload
	if err := json.Unmarshal(raw, &w); err != nil {
		return fmt.Errorf("parse workload: %w", err)
	}
	if len(w.Stages) == 0 {
		return fmt.Errorf("workload %s has no stages", rc.workload)
	}
	b, err := parseBounds(rc.bounds)
	if err != nil {
		return err
	}
	if micco.SchedulerNeedsPredictor(rc.scheduler) {
		return fmt.Errorf("scheduler %q needs a trained predictor; use redstar or miccobench", rc.scheduler)
	}
	primary, err := micco.NewSchedulerByName(rc.scheduler, b, nil)
	if err != nil {
		return err
	}
	cfg := micco.MI100(rc.gpus)
	if rc.memGiB > 0 {
		cfg.MemoryBytes = int64(rc.memGiB * float64(1<<30))
	} else {
		cfg.MemoryBytes = int64(1.1 * float64(w.TotalUniqueBytes()))
	}
	cluster, err := micco.NewCluster(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("workload %s: %d contractions, %d stages, %.1f GB working set\n",
		w.Name, w.NumPairs(), len(w.Stages), float64(w.TotalUniqueBytes())/1e9)
	fmt.Printf("cluster: %d GPUs, %.1f GiB pools\n\n", rc.gpus, float64(cfg.MemoryBytes)/(1<<30))

	var plan *micco.FaultPlan
	if rc.faultsIn != "" {
		f, err := os.Open(rc.faultsIn)
		if err != nil {
			return err
		}
		plan, err = micco.LoadFaultPlan(f)
		f.Close()
		if err != nil {
			return err
		}
		if err := plan.Validate(rc.gpus); err != nil {
			return err
		}
		fmt.Printf("fault plan %s: %d events\n\n", rc.faultsIn, len(plan.Events))
	}

	var reg *micco.MetricsRegistry
	opts := micco.RunOptions{FaultPlan: plan}
	if rc.fastKernels && !rc.numeric {
		return fmt.Errorf("-fast-kernels requires -numeric")
	}
	if rc.numeric {
		opts.Numeric = true
		opts.NumericSeed = rc.numericSeed
		opts.NumericReclaim = true
		opts.Parallelism = rc.numericPar
		opts.FastKernels = rc.fastKernels
		fmt.Printf("numeric kernels: %s\n\n", micco.KernelFeatures())
	}
	if rc.metricsOut != "" || rc.decisionsOut != "" || rc.traceOut != "" || rc.serveAddr != "" {
		// The registry also feeds decision instant events into the trace.
		reg = micco.NewMetricsRegistry()
		opts.Obs = reg
	}
	if rc.serveAddr != "" {
		// The flight recorder backs the server's /trace and /flight views
		// with the most recent activity.
		reg.SetFlightRecorder(micco.NewFlightRecorder(micco.FlightConfig{}))
		srv, err := micco.ServeObs(rc.serveAddr, reg)
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "observability server listening on %s\n", srv.URL())
	}
	if rc.ckptDir != "" {
		opts.CheckpointDir = rc.ckptDir
		opts.CheckpointEvery = rc.ckptEvery
	} else if rc.ckptEvery > 1 {
		return fmt.Errorf("-checkpoint-every requires -checkpoint-dir")
	}
	if rc.stallBudget > 0 && !rc.supervise {
		return fmt.Errorf("-stall-budget requires -supervise")
	}
	if rc.traceOut != "" {
		cluster.StartTrace()
	}
	var res *micco.Result
	if rc.supervise {
		// The supervisor rebuilds the scheduler per attempt (its state is
		// not trusted after a failure); the one cluster is reused — the
		// engine resets or restores it from the resume checkpoint anyway.
		var st micco.SuperviseStats
		res, st, err = micco.Supervise(ctx, micco.SuperviseConfig{
			Workload: &w,
			NewScheduler: func(context.Context) (micco.Scheduler, error) {
				return micco.NewSchedulerByName(rc.scheduler, b, nil)
			},
			NewCluster:     func() (*micco.Cluster, error) { return cluster, nil },
			Run:            opts,
			StallBudget:    rc.stallBudget,
			ResumeFromDisk: rc.ckptDir != "",
		})
		if st.Attempts > 1 || st.ResumedFromDisk {
			fmt.Printf("supervisor: %d attempt(s), %d retries, %d watchdog trips, %d devices revived, resumed from disk: %v\n\n",
				st.Attempts, st.Retries, st.WatchdogTrips, st.DevicesRevived, st.ResumedFromDisk)
		}
	} else {
		res, err = micco.Run(ctx, &w, primary, cluster, opts)
	}
	if err != nil {
		return err
	}
	if rc.numeric {
		mode := "exact"
		if rc.fastKernels {
			mode = "fast"
		}
		fmt.Printf("numeric fingerprint (%s, seed %d): %x\n\n", mode, rc.numericSeed, res.NumericFingerprint)
	}
	if plan != nil {
		rec := res.Recovery
		fmt.Printf("faults: %d injected, %d devices lost, %d restored, %d pairs rescheduled, %d transient retries (%.4fs backoff)\n\n",
			rec.FaultsInjected, rec.DevicesLost, rec.DevicesRestored,
			rec.PairsRescheduled, rec.TransientRetries, rec.BackoffSimSeconds)
	}
	if rc.traceOut != "" {
		if err := obsfile.WriteTrace(rc.traceOut, os.Stderr, cluster.StopTrace(), reg.Decisions()); err != nil {
			return err
		}
	}
	if rc.metricsOut != "" {
		if err := obsfile.WriteMetrics(rc.metricsOut, os.Stderr, res.Metrics); err != nil {
			return err
		}
	}
	if rc.decisionsOut != "" {
		if err := obsfile.WriteDecisions(rc.decisionsOut, os.Stderr, reg.Decisions()); err != nil {
			return err
		}
	}
	report := func(r *micco.Result) {
		fmt.Printf("%-14s %8.0f GFLOPS  makespan %8.4fs  hits %5d  evictions %4d  speedup %.2fx\n",
			r.Scheduler, r.GFLOPS, r.Makespan, r.Total.ReuseHits, r.Total.Evictions,
			micco.Speedup(r, res))
	}
	report(res)
	if rc.compare {
		for _, name := range micco.SchedulerNames() {
			if name == rc.scheduler || micco.SchedulerNeedsPredictor(name) {
				continue
			}
			s, err := micco.NewSchedulerByName(name, b, nil)
			if err != nil {
				return err
			}
			// Replay the same fault plan so speedups compare like with like.
			other, err := micco.Run(ctx, &w, s, cluster, micco.RunOptions{FaultPlan: plan})
			if err != nil {
				return err
			}
			report(other)
		}
	}
	if rc.serveAddr != "" {
		// Results stay browsable after the run; Ctrl-C (or SIGTERM) exits.
		fmt.Fprintln(os.Stderr, "run complete; observability server still up (interrupt to exit)")
		<-ctx.Done()
	}
	return nil
}
