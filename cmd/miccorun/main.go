// Command miccorun executes a workload file (as produced by wgen) on the
// simulated multi-GPU cluster under a chosen scheduler, completing the
// generate -> schedule -> measure toolchain.
//
// Usage:
//
//	wgen -stages 10 -vector 64 -o w.json
//	miccorun -workload w.json -scheduler micco -gpus 8
//	miccorun -workload w.json -scheduler groute -compare
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"micco"
)

func main() {
	workloadPath := flag.String("workload", "", "workload JSON file (from wgen); required")
	scheduler := flag.String("scheduler", "micco", "scheduler: "+strings.Join(micco.SchedulerNames(), ", "))
	bounds := flag.String("bounds", "0,2,0", "reuse bounds for the micco scheduler, e.g. 0,2,0")
	gpus := flag.Int("gpus", 8, "simulated device count")
	memGiB := flag.Float64("mem", 0, "per-device pool in GiB (0 = fit the working set with 10% headroom)")
	compare := flag.Bool("compare", false, "also run every other scheduler and report speedups")
	traceOut := flag.String("trace", "", "write a Chrome trace of the primary run")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, *workloadPath, *scheduler, *bounds, *gpus, *memGiB, *compare, *traceOut); err != nil {
		fmt.Fprintln(os.Stderr, "miccorun:", err)
		os.Exit(1)
	}
}

func parseBounds(s string) (micco.Bounds, error) {
	parts := strings.Split(s, ",")
	var b micco.Bounds
	if len(parts) != 3 {
		return b, fmt.Errorf("bounds %q: want three comma-separated integers", s)
	}
	for i, p := range parts {
		if _, err := fmt.Sscanf(strings.TrimSpace(p), "%d", &b[i]); err != nil {
			return b, fmt.Errorf("bounds %q: %w", s, err)
		}
		if b[i] < 0 {
			return b, fmt.Errorf("bounds %q: must be non-negative", s)
		}
	}
	return b, nil
}

func run(ctx context.Context, workloadPath, scheduler, bounds string, gpus int, memGiB float64, compare bool, traceOut string) error {
	if workloadPath == "" {
		return fmt.Errorf("-workload is required")
	}
	raw, err := os.ReadFile(workloadPath)
	if err != nil {
		return err
	}
	var w micco.Workload
	if err := json.Unmarshal(raw, &w); err != nil {
		return fmt.Errorf("parse workload: %w", err)
	}
	if len(w.Stages) == 0 {
		return fmt.Errorf("workload %s has no stages", workloadPath)
	}
	b, err := parseBounds(bounds)
	if err != nil {
		return err
	}
	if micco.SchedulerNeedsPredictor(scheduler) {
		return fmt.Errorf("scheduler %q needs a trained predictor; use redstar or miccobench", scheduler)
	}
	primary, err := micco.NewSchedulerByName(scheduler, b, nil)
	if err != nil {
		return err
	}
	cfg := micco.MI100(gpus)
	if memGiB > 0 {
		cfg.MemoryBytes = int64(memGiB * float64(1<<30))
	} else {
		cfg.MemoryBytes = int64(1.1 * float64(w.TotalUniqueBytes()))
	}
	cluster, err := micco.NewCluster(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("workload %s: %d contractions, %d stages, %.1f GB working set\n",
		w.Name, w.NumPairs(), len(w.Stages), float64(w.TotalUniqueBytes())/1e9)
	fmt.Printf("cluster: %d GPUs, %.1f GiB pools\n\n", gpus, float64(cfg.MemoryBytes)/(1<<30))

	if traceOut != "" {
		cluster.StartTrace()
	}
	res, err := micco.Run(ctx, &w, primary, cluster, micco.RunOptions{})
	if err != nil {
		return err
	}
	if traceOut != "" {
		events := cluster.StopTrace()
		f, err := os.Create(traceOut)
		if err != nil {
			return err
		}
		if err := micco.WriteChromeTrace(f, events); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "trace (%d events) written to %s\n", len(events), traceOut)
	}
	report := func(r *micco.Result) {
		fmt.Printf("%-14s %8.0f GFLOPS  makespan %8.4fs  hits %5d  evictions %4d  speedup %.2fx\n",
			r.Scheduler, r.GFLOPS, r.Makespan, r.Total.ReuseHits, r.Total.Evictions,
			micco.Speedup(r, res))
	}
	report(res)
	if compare {
		for _, name := range micco.SchedulerNames() {
			if name == scheduler || micco.SchedulerNeedsPredictor(name) {
				continue
			}
			s, err := micco.NewSchedulerByName(name, b, nil)
			if err != nil {
				return err
			}
			other, err := micco.Run(ctx, &w, s, cluster, micco.RunOptions{})
			if err != nil {
				return err
			}
			report(other)
		}
	}
	return nil
}
