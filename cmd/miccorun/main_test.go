package main

import (
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"micco"
)

func workloadFile(t *testing.T) string {
	t.Helper()
	w, err := micco.GenerateWorkload(micco.WorkloadConfig{
		Seed: 3, Stages: 4, VectorSize: 8, TensorDim: 64, Batch: 2,
		Rank: micco.RankMeson, RepeatRate: 0.5, Dist: micco.Uniform,
	})
	if err != nil {
		t.Fatal(err)
	}
	raw, err := json.Marshal(w)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "w.json")
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func silence(t *testing.T, f func() error) error {
	t.Helper()
	old := os.Stdout
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = devnull
	defer func() {
		os.Stdout = old
		devnull.Close()
	}()
	return f()
}

func TestParseBounds(t *testing.T) {
	b, err := parseBounds("0,2,0")
	if err != nil || b != (micco.Bounds{0, 2, 0}) {
		t.Errorf("parseBounds = %v, %v", b, err)
	}
	b, err = parseBounds(" 1 , 2 , 3 ")
	if err != nil || b != (micco.Bounds{1, 2, 3}) {
		t.Errorf("spaced bounds = %v, %v", b, err)
	}
	for _, bad := range []string{"", "1,2", "a,b,c", "-1,0,0", "1,2,3,4"} {
		if _, err := parseBounds(bad); err == nil {
			t.Errorf("parseBounds(%q): want error", bad)
		}
	}
}

func TestSchedulerRegistry(t *testing.T) {
	for _, name := range micco.SchedulerNames() {
		if micco.SchedulerNeedsPredictor(name) {
			continue
		}
		s, err := micco.NewSchedulerByName(name, micco.Bounds{}, nil)
		if err != nil || s == nil {
			t.Errorf("NewSchedulerByName(%q): %v", name, err)
		}
	}
	if _, err := micco.NewSchedulerByName("heft", micco.Bounds{}, nil); !errors.Is(err, micco.ErrUnknownScheduler) {
		t.Errorf("unknown scheduler: want ErrUnknownScheduler, got %v", err)
	}
}

func TestRunWorkloadFileAndCompare(t *testing.T) {
	path := workloadFile(t)
	trace := filepath.Join(t.TempDir(), "trace.json")
	err := silence(t, func() error {
		return run(context.Background(), path, "micco", "0,2,0", 4, 0, true, trace)
	})
	if err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(trace)
	if err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(raw, &events); err != nil {
		t.Fatalf("trace not valid JSON: %v", err)
	}
	if len(events) == 0 {
		t.Error("empty trace")
	}
}

func TestRunErrors(t *testing.T) {
	if err := run(context.Background(), "", "micco", "0,0,0", 4, 0, false, ""); err == nil {
		t.Error("missing workload: want error")
	}
	if err := run(context.Background(), "/nonexistent.json", "micco", "0,0,0", 4, 0, false, ""); err == nil {
		t.Error("missing file: want error")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), bad, "micco", "0,0,0", 4, 0, false, ""); err == nil {
		t.Error("bad JSON: want error")
	}
	empty := filepath.Join(t.TempDir(), "empty.json")
	if err := os.WriteFile(empty, []byte("{}"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), empty, "micco", "0,0,0", 4, 0, false, ""); err == nil {
		t.Error("empty workload: want error")
	}
	good := workloadFile(t)
	if err := run(context.Background(), good, "heft", "0,0,0", 4, 0, false, ""); err == nil {
		t.Error("bad scheduler: want error")
	}
	if err := run(context.Background(), good, "micco", "x", 4, 0, false, ""); err == nil {
		t.Error("bad bounds: want error")
	}
}

func TestRunWithExplicitMemory(t *testing.T) {
	path := workloadFile(t)
	err := silence(t, func() error {
		return run(context.Background(), path, "groute", "0,0,0", 2, 0.25, false, "")
	})
	if err != nil {
		t.Fatal(err)
	}
}
