package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"micco"
)

func workloadFile(t *testing.T) string {
	t.Helper()
	w, err := micco.GenerateWorkload(micco.WorkloadConfig{
		Seed: 3, Stages: 4, VectorSize: 8, TensorDim: 64, Batch: 2,
		Rank: micco.RankMeson, RepeatRate: 0.5, Dist: micco.Uniform,
	})
	if err != nil {
		t.Fatal(err)
	}
	raw, err := json.Marshal(w)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "w.json")
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func silence(t *testing.T, f func() error) error {
	t.Helper()
	old := os.Stdout
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = devnull
	defer func() {
		os.Stdout = old
		devnull.Close()
	}()
	return f()
}

func TestParseBounds(t *testing.T) {
	b, err := parseBounds("0,2,0")
	if err != nil || b != (micco.Bounds{0, 2, 0}) {
		t.Errorf("parseBounds = %v, %v", b, err)
	}
	b, err = parseBounds(" 1 , 2 , 3 ")
	if err != nil || b != (micco.Bounds{1, 2, 3}) {
		t.Errorf("spaced bounds = %v, %v", b, err)
	}
	for _, bad := range []string{"", "1,2", "a,b,c", "-1,0,0", "1,2,3,4"} {
		if _, err := parseBounds(bad); err == nil {
			t.Errorf("parseBounds(%q): want error", bad)
		}
	}
}

func TestSchedulerRegistry(t *testing.T) {
	for _, name := range micco.SchedulerNames() {
		if micco.SchedulerNeedsPredictor(name) {
			continue
		}
		s, err := micco.NewSchedulerByName(name, micco.Bounds{}, nil)
		if err != nil || s == nil {
			t.Errorf("NewSchedulerByName(%q): %v", name, err)
		}
	}
	if _, err := micco.NewSchedulerByName("heft", micco.Bounds{}, nil); !errors.Is(err, micco.ErrUnknownScheduler) {
		t.Errorf("unknown scheduler: want ErrUnknownScheduler, got %v", err)
	}
}

// base returns a runnable config; tests override individual fields.
func base(workload string) runConfig {
	return runConfig{workload: workload, scheduler: "micco", bounds: "0,2,0", gpus: 4}
}

func TestRunWorkloadFileAndCompare(t *testing.T) {
	path := workloadFile(t)
	trace := filepath.Join(t.TempDir(), "trace.json")
	cfg := base(path)
	cfg.compare = true
	cfg.traceOut = trace
	err := silence(t, func() error { return run(context.Background(), cfg) })
	if err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(trace)
	if err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(raw, &events); err != nil {
		t.Fatalf("trace not valid JSON: %v", err)
	}
	if len(events) == 0 {
		t.Error("empty trace")
	}
	// With observability on, the trace also carries decision instant events.
	instants := 0
	for _, e := range events {
		if e["ph"] == "i" {
			instants++
		}
	}
	if instants == 0 {
		t.Error("trace has no decision instant events")
	}
}

func TestRunWritesMetricsAndDecisions(t *testing.T) {
	path := workloadFile(t)
	dir := t.TempDir()
	cfg := base(path)
	cfg.metricsOut = filepath.Join(dir, "m.json")
	cfg.decisionsOut = filepath.Join(dir, "d.ndjson")
	err := silence(t, func() error { return run(context.Background(), cfg) })
	if err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(cfg.metricsOut)
	if err != nil {
		t.Fatal(err)
	}
	var snap micco.MetricsSnapshot
	if err := json.Unmarshal(raw, &snap); err != nil {
		t.Fatalf("metrics not valid JSON: %v", err)
	}
	if len(snap.Counters) == 0 || len(snap.Gauges) == 0 {
		t.Errorf("metrics snapshot empty: %d counters, %d gauges", len(snap.Counters), len(snap.Gauges))
	}
	draw, err := os.ReadFile(cfg.decisionsOut)
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.Split(bytes.TrimSpace(draw), []byte("\n"))
	if len(lines) == 0 {
		t.Fatal("no decision records")
	}
	var rec micco.DecisionRecord
	if err := json.Unmarshal(lines[0], &rec); err != nil {
		t.Fatalf("decision line not valid JSON: %v", err)
	}
	if rec.Policy == "" {
		t.Error("decision record has no policy")
	}
}

func TestRunErrors(t *testing.T) {
	ctx := context.Background()
	if err := run(ctx, base("")); err == nil {
		t.Error("missing workload: want error")
	}
	if err := run(ctx, base("/nonexistent.json")); err == nil {
		t.Error("missing file: want error")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(ctx, base(bad)); err == nil {
		t.Error("bad JSON: want error")
	}
	empty := filepath.Join(t.TempDir(), "empty.json")
	if err := os.WriteFile(empty, []byte("{}"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(ctx, base(empty)); err == nil {
		t.Error("empty workload: want error")
	}
	good := workloadFile(t)
	cfg := base(good)
	cfg.scheduler = "heft"
	if err := run(ctx, cfg); err == nil {
		t.Error("bad scheduler: want error")
	}
	cfg = base(good)
	cfg.bounds = "x"
	if err := run(ctx, cfg); err == nil {
		t.Error("bad bounds: want error")
	}
}

func TestRunWithFaultPlan(t *testing.T) {
	dir := t.TempDir()
	planPath := filepath.Join(dir, "plan.json")
	plan := &micco.FaultPlan{Events: []micco.FaultEvent{
		{Kind: micco.FaultDeviceLoss, Stage: 1, Pair: 0, Device: 1},
		{Kind: micco.FaultTransientTransfer, Stage: 2, Pair: 0, Failures: 2},
		{Kind: micco.FaultDeviceRestore, Stage: 3, Pair: -1, Device: 1},
	}}
	f, err := os.Create(planPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := micco.SaveFaultPlan(f, plan); err != nil {
		t.Fatal(err)
	}
	f.Close()

	cfg := base(workloadFile(t))
	cfg.faultsIn = planPath
	cfg.compare = true
	if err := silence(t, func() error { return run(context.Background(), cfg) }); err != nil {
		t.Fatal(err)
	}

	// A malformed plan file fails loudly.
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`{"evnets":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	cfg = base(workloadFile(t))
	cfg.faultsIn = bad
	if err := run(context.Background(), cfg); err == nil {
		t.Error("malformed fault plan: want error")
	}

	// A plan naming a device outside the cluster fails validation.
	oob := filepath.Join(dir, "oob.json")
	if err := os.WriteFile(oob, []byte(`{"events":[{"kind":"device-loss","device":99}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	cfg = base(workloadFile(t))
	cfg.faultsIn = oob
	if err := run(context.Background(), cfg); err == nil {
		t.Error("out-of-range fault device: want error")
	}
}

// TestRunNumericFlags: -numeric completes and -fast-kernels rides on it;
// -fast-kernels without -numeric is rejected before any run starts.
func TestRunNumericFlags(t *testing.T) {
	path := workloadFile(t)
	cfg := base(path)
	cfg.numeric = true
	cfg.numericSeed = 7
	if err := silence(t, func() error { return run(context.Background(), cfg) }); err != nil {
		t.Fatalf("numeric run: %v", err)
	}
	cfg.fastKernels = true
	if err := silence(t, func() error { return run(context.Background(), cfg) }); err != nil {
		t.Fatalf("fast-kernels run: %v", err)
	}
	bad := base(path)
	bad.fastKernels = true
	if err := silence(t, func() error { return run(context.Background(), bad) }); err == nil {
		t.Error("-fast-kernels without -numeric accepted")
	}
}

func TestRunWithExplicitMemory(t *testing.T) {
	cfg := base(workloadFile(t))
	cfg.scheduler = "groute"
	cfg.bounds = "0,0,0"
	cfg.gpus = 2
	cfg.memGiB = 0.25
	err := silence(t, func() error { return run(context.Background(), cfg) })
	if err != nil {
		t.Fatal(err)
	}
}

// TestRunCheckpointAndSupervise: -checkpoint-dir leaves a durable final
// checkpoint the decoder accepts; -supervise completes a clean run; the
// flag cross-checks reject inconsistent combinations before any run.
func TestRunCheckpointAndSupervise(t *testing.T) {
	path := workloadFile(t)
	dir := t.TempDir()
	cfg := base(path)
	cfg.ckptDir = dir
	cfg.ckptEvery = 2
	cfg.supervise = true
	cfg.numeric = true
	cfg.numericSeed = 5
	if err := silence(t, func() error { return run(context.Background(), cfg) }); err != nil {
		t.Fatalf("supervised checkpointed run: %v", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil || len(entries) != 1 {
		t.Fatalf("checkpoint dir entries = %v, %v; want exactly the durable file", entries, err)
	}
	cp, err := micco.LoadCheckpointFile(filepath.Join(dir, entries[0].Name()))
	if err != nil {
		t.Fatalf("final durable checkpoint unreadable: %v", err)
	}
	if cp.Workload() == "" {
		t.Error("checkpoint has no workload name")
	}

	bad := base(path)
	bad.ckptEvery = 2
	if err := run(context.Background(), bad); err == nil {
		t.Error("-checkpoint-every without -checkpoint-dir accepted")
	}
	bad = base(path)
	bad.stallBudget = time.Second
	if err := run(context.Background(), bad); err == nil {
		t.Error("-stall-budget without -supervise accepted")
	}
}
