package main

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"micco"
)

func TestRunSingleExperimentWithCSV(t *testing.T) {
	dir := t.TempDir()
	// Redirect stdout so the table rendering has somewhere harmless to go.
	old := os.Stdout
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = devnull
	metrics := filepath.Join(dir, "m.json")
	trace := filepath.Join(dir, "t.json")
	err = run(context.Background(), "tab5", true, 7, 0, dir, metrics, trace)
	os.Stdout = old
	devnull.Close()
	if err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(filepath.Join(dir, "tab5.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), "distribution") {
		t.Errorf("CSV missing header:\n%s", raw)
	}
	lines := strings.Split(strings.TrimSpace(string(raw)), "\n")
	if len(lines) != 3 { // header + two distributions
		t.Errorf("CSV lines = %d, want 3", len(lines))
	}

	mraw, err := os.ReadFile(metrics)
	if err != nil {
		t.Fatal(err)
	}
	var snap micco.MetricsSnapshot
	if err := json.Unmarshal(mraw, &snap); err != nil {
		t.Fatalf("metrics snapshot does not parse: %v", err)
	}
	if snap.Counters["micco_sim_events_total{kind=\"kernel\"}"] == 0 {
		t.Errorf("metrics snapshot has no kernel events: %v", snap.Counters)
	}

	traw, err := os.ReadFile(trace)
	if err != nil {
		t.Fatal(err)
	}
	var tr []map[string]any
	if err := json.Unmarshal(traw, &tr); err != nil {
		t.Fatalf("trace does not parse: %v", err)
	}
	if len(tr) == 0 {
		t.Error("trace has no events")
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run(context.Background(), "fig99", true, 1, 0, "", "", ""); err == nil {
		t.Error("unknown experiment: want error")
	}
}

func TestWriteMemProfile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "mem.pprof")
	if err := writeMemProfile(path); err != nil {
		t.Fatal(err)
	}
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if info.Size() == 0 {
		t.Error("empty heap profile")
	}
	if err := writeMemProfile(filepath.Join(t.TempDir(), "no", "such", "dir")); err == nil {
		t.Error("uncreatable path: want error")
	}
}
