// Command miccobench regenerates the MICCO paper's evaluation tables and
// figures on the simulated multi-GPU cluster.
//
// Usage:
//
//	miccobench [-run fig7,tab6] [-quick] [-seed N] [-parallel N] [-csv DIR]
//
// Without -run, every experiment runs in paper order. With -csv, each
// table is additionally written as CSV into the given directory.
// -cpuprofile and -memprofile write pprof profiles of the whole invocation
// (go tool pprof <binary> <profile>). -metrics writes a JSON metrics
// snapshot aggregated across every experiment run; -trace writes a Chrome
// trace of the most recent simulator activity (flight-recorder bounded).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"syscall"
	"time"

	"micco"
	"micco/internal/obsfile"
)

func main() {
	runList := flag.String("run", "", "comma-separated experiment IDs (default: all paper experiments); available: "+strings.Join(micco.ExperimentIDs(), ",")+",ext")
	quick := flag.Bool("quick", false, "shrink sweeps and the training corpus for a fast run")
	seed := flag.Int64("seed", 2022, "random seed for workloads, corpus and models")
	parallel := flag.Int("parallel", 0, "worker pool for independent sweep points (0 = GOMAXPROCS, 1 = serial); tables are identical at any setting")
	csvDir := flag.String("csv", "", "directory to write per-experiment CSV files")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	metricsOut := flag.String("metrics", "", "write a JSON metrics snapshot aggregated across all experiment runs")
	traceOut := flag.String("trace", "", "write a Chrome trace of the most recent simulator activity (bounded by the flight-recorder ring)")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "miccobench:", err)
		os.Exit(1)
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fail(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			fail(err)
		}
		defer f.Close()
		defer pprof.StopCPUProfile()
	}
	if err := run(ctx, *runList, *quick, *seed, *parallel, *csvDir, *metricsOut, *traceOut); err != nil {
		fail(err)
	}
	if *memProfile != "" {
		if err := writeMemProfile(*memProfile); err != nil {
			fail(err)
		}
	}
}

// writeMemProfile snapshots the heap after a final GC so the profile shows
// live allocations, not garbage awaiting collection.
func writeMemProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func run(ctx context.Context, runList string, quick bool, seed int64, parallel int, csvDir, metricsOut, traceOut string) error {
	ids := micco.ExperimentIDs()
	if runList != "" {
		ids = strings.Split(runList, ",")
	}
	if csvDir != "" {
		if err := os.MkdirAll(csvDir, 0o755); err != nil {
			return err
		}
	}
	fmt.Printf("kernels: %s\n\n", micco.KernelFeatures())
	// With -metrics or -trace, every sweep point reports into one shared
	// registry; the trace is bounded by the flight-recorder ring, so it
	// holds the most recent activity rather than the whole sweep.
	var reg *micco.MetricsRegistry
	if metricsOut != "" || traceOut != "" {
		reg = micco.NewMetricsRegistry()
		if traceOut != "" {
			reg.SetFlightRecorder(micco.NewFlightRecorder(micco.FlightConfig{}))
		}
	}
	h := micco.NewHarness(micco.HarnessOptions{Quick: quick, Seed: seed, Parallelism: parallel, Obs: reg})
	for _, id := range ids {
		id = strings.TrimSpace(id)
		if id == "" {
			continue
		}
		start := time.Now()
		tab, err := h.RunExperiment(ctx, id)
		if err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		if err := tab.Render(os.Stdout); err != nil {
			return err
		}
		fmt.Printf("[%s completed in %v]\n\n", id, time.Since(start).Round(time.Millisecond))
		if csvDir != "" {
			f, err := os.Create(filepath.Join(csvDir, tab.ID+".csv"))
			if err != nil {
				return err
			}
			if err := tab.CSV(f); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
		}
	}
	if metricsOut != "" {
		if err := obsfile.WriteMetrics(metricsOut, os.Stderr, reg.Snapshot()); err != nil {
			return err
		}
	}
	if traceOut != "" {
		snap := reg.FlightRecorder().Snapshot()
		events := micco.TraceEventsFromFlight(snap.Events)
		if err := obsfile.WriteTrace(traceOut, os.Stderr, events, snap.Decisions); err != nil {
			return err
		}
	}
	return nil
}
