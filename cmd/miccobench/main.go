// Command miccobench regenerates the MICCO paper's evaluation tables and
// figures on the simulated multi-GPU cluster.
//
// Usage:
//
//	miccobench [-run fig7,tab6] [-quick] [-seed N] [-parallel N] [-csv DIR]
//
// Without -run, every experiment runs in paper order. With -csv, each
// table is additionally written as CSV into the given directory.
// -cpuprofile and -memprofile write pprof profiles of the whole invocation
// (go tool pprof <binary> <profile>).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"syscall"
	"time"

	"micco"
)

func main() {
	runList := flag.String("run", "", "comma-separated experiment IDs (default: all paper experiments); available: "+strings.Join(micco.ExperimentIDs(), ",")+",ext")
	quick := flag.Bool("quick", false, "shrink sweeps and the training corpus for a fast run")
	seed := flag.Int64("seed", 2022, "random seed for workloads, corpus and models")
	parallel := flag.Int("parallel", 0, "worker pool for independent sweep points (0 = GOMAXPROCS, 1 = serial); tables are identical at any setting")
	csvDir := flag.String("csv", "", "directory to write per-experiment CSV files")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "miccobench:", err)
		os.Exit(1)
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fail(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			fail(err)
		}
		defer f.Close()
		defer pprof.StopCPUProfile()
	}
	if err := run(ctx, *runList, *quick, *seed, *parallel, *csvDir); err != nil {
		fail(err)
	}
	if *memProfile != "" {
		if err := writeMemProfile(*memProfile); err != nil {
			fail(err)
		}
	}
}

// writeMemProfile snapshots the heap after a final GC so the profile shows
// live allocations, not garbage awaiting collection.
func writeMemProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func run(ctx context.Context, runList string, quick bool, seed int64, parallel int, csvDir string) error {
	ids := micco.ExperimentIDs()
	if runList != "" {
		ids = strings.Split(runList, ",")
	}
	if csvDir != "" {
		if err := os.MkdirAll(csvDir, 0o755); err != nil {
			return err
		}
	}
	fmt.Printf("kernels: %s\n\n", micco.KernelFeatures())
	h := micco.NewHarness(micco.HarnessOptions{Quick: quick, Seed: seed, Parallelism: parallel})
	for _, id := range ids {
		id = strings.TrimSpace(id)
		if id == "" {
			continue
		}
		start := time.Now()
		tab, err := h.RunExperiment(ctx, id)
		if err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		if err := tab.Render(os.Stdout); err != nil {
			return err
		}
		fmt.Printf("[%s completed in %v]\n\n", id, time.Since(start).Round(time.Millisecond))
		if csvDir != "" {
			f, err := os.Create(filepath.Join(csvDir, tab.ID+".csv"))
			if err != nil {
				return err
			}
			if err := tab.CSV(f); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
		}
	}
	return nil
}
