// Command miccotrain builds the reuse-bound training corpus, trains the
// three regression models of the paper's Table IV, reports their held-out
// R-squared scores, and demonstrates online inference with the winning
// Random Forest.
//
// Usage:
//
//	miccotrain [-samples N] [-seed N] [-gpus N] [-test FRAC]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"micco"
)

func main() {
	samples := flag.Int("samples", 300, "training corpus size (the paper uses 300)")
	seed := flag.Int64("seed", 2022, "random seed")
	gpus := flag.Int("gpus", 8, "simulated device count for corpus labeling")
	testFrac := flag.Float64("test", 0.2, "held-out test fraction")
	out := flag.String("o", "", "save the trained Random Forest predictor as JSON")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, *samples, *seed, *gpus, *testFrac, *out); err != nil {
		fmt.Fprintln(os.Stderr, "miccotrain:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, samples int, seed int64, gpus int, testFrac float64, out string) error {
	fmt.Printf("building corpus: %d samples on %d simulated GPUs...\n", samples, gpus)
	start := time.Now()
	corpus, err := micco.BuildCorpus(ctx, micco.CorpusConfig{
		Samples: samples, Seed: seed, NumGPU: gpus,
	})
	if err != nil {
		return err
	}
	fmt.Printf("corpus ready in %v (%d features, %d targets)\n\n",
		time.Since(start).Round(time.Millisecond), corpus.NumFeatures(), corpus.NumOutputs())

	fmt.Println("Table IV — R2 score of regression models:")
	scores, err := micco.EvaluateModels(corpus, testFrac, seed)
	if err != nil {
		return err
	}
	for _, s := range scores {
		fmt.Printf("  %-20s %.2f\n", s.Kind, s.R2)
	}

	pred, err := micco.TrainPredictor(corpus, micco.ForestModel, testFrac, seed)
	if err != nil {
		return err
	}
	pred.NumGPU = gpus
	fmt.Printf("\ndeployed model: %v (test R2 %.2f)\n", pred.Kind, pred.TestR2)

	fmt.Println("\npermutation feature importance (R2 drop when shuffled):")
	imps, err := pred.FeatureImportance(corpus, seed)
	if err != nil {
		return err
	}
	for _, im := range imps {
		fmt.Printf("  %-18s %+.3f\n", im.Feature, im.Drop)
	}

	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		if err := pred.Save(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("\npredictor saved to %s\n", out)
	}
	fmt.Println("\nsample online inferences (per-stage reuse bounds):")
	probes := []micco.Features{
		{VectorSize: 64, TensorDim: 384, DistBias: 0, RepeatRate: 0.50},
		{VectorSize: 64, TensorDim: 384, DistBias: 1, RepeatRate: 0.50},
		{VectorSize: 16, TensorDim: 128, DistBias: 0, RepeatRate: 0.25},
		{VectorSize: 32, TensorDim: 768, DistBias: 1, RepeatRate: 0.75},
	}
	for _, f := range probes {
		fmt.Printf("  v=%3.0f t=%3.0f biased=%v rate=%.2f -> bounds %v\n",
			f.VectorSize, f.TensorDim, f.DistBias == 1, f.RepeatRate, pred.PredictBounds(f))
	}
	return nil
}
