package main

import (
	"context"
	"os"
	"path/filepath"
	"testing"

	"micco"
)

func TestTrainSaveAndReload(t *testing.T) {
	out := filepath.Join(t.TempDir(), "model.json")
	old := os.Stdout
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = devnull
	err = run(context.Background(), 24, 7, 4, 0.2, out)
	os.Stdout = old
	devnull.Close()
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	pred, err := micco.LoadPredictor(f)
	if err != nil {
		t.Fatal(err)
	}
	if pred.Kind != micco.ForestModel || pred.NumGPU != 4 {
		t.Errorf("reloaded predictor metadata wrong: %+v", pred)
	}
	b := pred.PredictBounds(micco.Features{VectorSize: 32, TensorDim: 256, RepeatRate: 0.5})
	for _, v := range b {
		if v < 0 {
			t.Errorf("negative bound %v", b)
		}
	}
}
