package micco_test

import (
	"context"
	"sync"
	"testing"

	"micco"
)

// benchHarness is shared across benchmarks so the reuse-bound model is
// trained once; quick mode keeps sweep sizes benchmark-friendly while
// exercising the same code paths as the full paper runs.
var (
	benchOnce    sync.Once
	benchH       *micco.Harness
	benchPrepErr error
)

func harness(b *testing.B) *micco.Harness {
	b.Helper()
	benchOnce.Do(func() {
		benchH = micco.NewHarness(micco.HarnessOptions{Quick: true, Seed: 2022})
		_, benchPrepErr = benchH.Predictor(context.Background()) // train once, outside timing
	})
	if benchPrepErr != nil {
		b.Fatal(benchPrepErr)
	}
	return benchH
}

func benchExperiment(b *testing.B, id string) {
	h := harness(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab, err := h.RunExperiment(context.Background(), id)
		if err != nil {
			b.Fatal(err)
		}
		if len(tab.Rows) == 0 {
			b.Fatalf("%s produced no rows", id)
		}
	}
}

// BenchmarkFig5Spearman regenerates the Spearman correlation heatmap of
// data characteristics, reuse bounds and GFLOPS (paper Fig. 5).
func BenchmarkFig5Spearman(b *testing.B) { benchExperiment(b, "fig5") }

// BenchmarkTab4Regression regenerates the regression-model comparison
// (paper Table IV) on the quick corpus.
func BenchmarkTab4Regression(b *testing.B) { benchExperiment(b, "tab4") }

// BenchmarkFig7Overall regenerates the overall-performance sweep
// (paper Fig. 7): Groute vs MICCO-naive vs MICCO-optimal.
func BenchmarkFig7Overall(b *testing.B) { benchExperiment(b, "fig7") }

// BenchmarkTab5Overhead regenerates the scheduling-overhead measurement
// (paper Table V).
func BenchmarkTab5Overhead(b *testing.B) { benchExperiment(b, "tab5") }

// BenchmarkFig8ReuseBounds regenerates the reuse-bound sweep
// (paper Fig. 8): thirteen bound settings across three cases.
func BenchmarkFig8ReuseBounds(b *testing.B) { benchExperiment(b, "fig8") }

// BenchmarkFig9Scalability regenerates the 1-8 GPU scalability study
// (paper Fig. 9).
func BenchmarkFig9Scalability(b *testing.B) { benchExperiment(b, "fig9") }

// BenchmarkFig10TensorSize regenerates the tensor-size study
// (paper Fig. 10).
func BenchmarkFig10TensorSize(b *testing.B) { benchExperiment(b, "fig10") }

// BenchmarkFig11Oversubscription regenerates the memory-oversubscription
// study (paper Fig. 11).
func BenchmarkFig11Oversubscription(b *testing.B) { benchExperiment(b, "fig11") }

// BenchmarkTab6Redstar regenerates the real-correlator case study
// (paper Table VI) through the Wick/graph/Redstar front end.
func BenchmarkTab6Redstar(b *testing.B) { benchExperiment(b, "tab6") }

// --- component benchmarks and ablations -----------------------------------

func benchWorkload(b *testing.B) *micco.Workload {
	b.Helper()
	w, err := micco.GenerateWorkload(micco.WorkloadConfig{
		Seed: 1, Stages: 10, VectorSize: 64, TensorDim: 384, Batch: 8,
		Rank: micco.RankMeson, RepeatRate: 0.5, Dist: micco.Uniform,
	})
	if err != nil {
		b.Fatal(err)
	}
	return w
}

// BenchmarkSchedulerMICCO measures MICCO's end-to-end scheduling and
// simulation throughput; b.N counts whole 640-contraction workload runs.
func BenchmarkSchedulerMICCO(b *testing.B) {
	w := benchWorkload(b)
	cluster, err := micco.NewCluster(micco.MI100(8))
	if err != nil {
		b.Fatal(err)
	}
	s := micco.NewMICCOFixed(micco.Bounds{0, 2, 0})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := micco.Run(context.Background(), w, s, cluster, micco.RunOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSchedulerGroute is the baseline counterpart of
// BenchmarkSchedulerMICCO.
func BenchmarkSchedulerGroute(b *testing.B) {
	w := benchWorkload(b)
	cluster, err := micco.NewCluster(micco.MI100(8))
	if err != nil {
		b.Fatal(err)
	}
	s := micco.NewGroute()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := micco.Run(context.Background(), w, s, cluster, micco.RunOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationPeerFetch measures the design alternative the default
// config disables: sourcing repeated tensors over a peer-to-peer fabric
// instead of staging through the host (DESIGN.md ablation).
func BenchmarkAblationPeerFetch(b *testing.B) {
	w := benchWorkload(b)
	for _, peer := range []struct {
		name string
		on   bool
	}{{"HostStaged", false}, {"PeerFetch", true}} {
		b.Run(peer.name, func(b *testing.B) {
			cfg := micco.MI100(8)
			cfg.PeerFetch = peer.on
			cluster, err := micco.NewCluster(cfg)
			if err != nil {
				b.Fatal(err)
			}
			s := micco.NewMICCOFixed(micco.Bounds{0, 2, 0})
			var gflops float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := micco.Run(context.Background(), w, s, cluster, micco.RunOptions{})
				if err != nil {
					b.Fatal(err)
				}
				gflops = res.GFLOPS
			}
			b.ReportMetric(gflops, "simGFLOPS")
		})
	}
}

// BenchmarkAblationDeadTensorDiscard measures the liveness-based discard
// optimization (dropping inputs after their final consumer) against the
// paper's keep-everything-resident policy, under memory pressure.
func BenchmarkAblationDeadTensorDiscard(b *testing.B) {
	w := benchWorkload(b)
	for _, mode := range []struct {
		name    string
		discard bool
	}{{"KeepResident", false}, {"DiscardDead", true}} {
		b.Run(mode.name, func(b *testing.B) {
			cfg := micco.MI100(8)
			cfg.MemoryBytes = w.TotalUniqueBytes() / 8 // oversubscribed
			cluster, err := micco.NewCluster(cfg)
			if err != nil {
				b.Fatal(err)
			}
			s := micco.NewMICCOFixed(micco.Bounds{0, 2, 0})
			var gflops float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := micco.Run(context.Background(), w, s, cluster, micco.RunOptions{DiscardDeadInputs: mode.discard})
				if err != nil {
					b.Fatal(err)
				}
				gflops = res.GFLOPS
			}
			b.ReportMetric(gflops, "simGFLOPS")
		})
	}
}

// BenchmarkContractionKernel measures the real complex batched matrix
// multiply used in numeric mode.
func BenchmarkContractionKernel(b *testing.B) {
	x, err := micco.NewRandomTensor(micco.TensorDesc{ID: 1, Rank: micco.RankMeson, Dim: 128, Batch: 4}, 1)
	if err != nil {
		b.Fatal(err)
	}
	y, err := micco.NewRandomTensor(micco.TensorDesc{ID: 2, Rank: micco.RankMeson, Dim: 128, Batch: 4}, 2)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := micco.Contract(x, y, 3, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkContractionKernelInto measures the pooled contraction path:
// same workload as BenchmarkContractionKernel, but writing into a reused
// destination, so steady state performs no allocation beyond the pack
// pool's amortized buffers (expect allocs/op <= 2).
func BenchmarkContractionKernelInto(b *testing.B) {
	x, err := micco.NewRandomTensor(micco.TensorDesc{ID: 1, Rank: micco.RankMeson, Dim: 128, Batch: 4}, 1)
	if err != nil {
		b.Fatal(err)
	}
	y, err := micco.NewRandomTensor(micco.TensorDesc{ID: 2, Rank: micco.RankMeson, Dim: 128, Batch: 4}, 2)
	if err != nil {
		b.Fatal(err)
	}
	dst := &micco.Tensor{}
	if err := micco.ContractInto(dst, x, y, 3, 0); err != nil { // warm dst + pool
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := micco.ContractInto(dst, x, y, 3, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkContractionKernelFast is BenchmarkContractionKernelInto in the
// fast kernel tier: same shape and pooled destination, FMA/AVX-512 fused
// micro-kernels (DESIGN.md §12). The ratio to BenchmarkContractionKernel
// is the fast tier's speedup on this machine.
func BenchmarkContractionKernelFast(b *testing.B) {
	x, err := micco.NewRandomTensor(micco.TensorDesc{ID: 1, Rank: micco.RankMeson, Dim: 128, Batch: 4}, 1)
	if err != nil {
		b.Fatal(err)
	}
	y, err := micco.NewRandomTensor(micco.TensorDesc{ID: 2, Rank: micco.RankMeson, Dim: 128, Batch: 4}, 2)
	if err != nil {
		b.Fatal(err)
	}
	dst := &micco.Tensor{}
	if err := micco.ContractIntoMode(dst, x, y, 3, 0, micco.KernelFast); err != nil { // warm dst + pool + tuner
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := micco.ContractIntoMode(dst, x, y, 3, 0, micco.KernelFast); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkContractionStage measures a stage-shaped fan-out — one shared
// operand feeding several contractions — pairwise versus fused through
// ContractBatch, in both kernel tiers. Fusion packs the shared operand
// once per stage instead of once per pair.
func BenchmarkContractionStage(b *testing.B) {
	const fanOut = 4
	shared, err := micco.NewRandomTensor(micco.TensorDesc{ID: 1, Rank: micco.RankMeson, Dim: 128, Batch: 4}, 1)
	if err != nil {
		b.Fatal(err)
	}
	rhs := make([]*micco.Tensor, fanOut)
	for i := range rhs {
		if rhs[i], err = micco.NewRandomTensor(micco.TensorDesc{ID: uint64(2 + i), Rank: micco.RankMeson, Dim: 128, Batch: 4}, int64(2+i)); err != nil {
			b.Fatal(err)
		}
	}
	dsts := make([]*micco.Tensor, fanOut)
	for i := range dsts {
		dsts[i] = &micco.Tensor{}
	}
	// One ops slice reused across iterations: ContractBatch only reads
	// it, and the batch planner pools its own plan/panel state, so the
	// steady-state fused path performs zero allocations per stage.
	ops := make([]micco.BatchOp, fanOut)
	for i := range ops {
		ops[i] = micco.BatchOp{Dst: dsts[i], A: shared, B: rhs[i], OutID: uint64(100 + i)}
	}
	for _, tier := range []struct {
		name string
		mode micco.KernelMode
	}{{"exact", micco.KernelExact}, {"fast", micco.KernelFast}} {
		b.Run("pairwise/"+tier.name, func(b *testing.B) {
			for i := range dsts { // warm destinations + pools
				if err := micco.ContractIntoMode(dsts[i], shared, rhs[i], uint64(100+i), 0, tier.mode); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for n := 0; n < b.N; n++ {
				for i := range dsts {
					if err := micco.ContractIntoMode(dsts[i], shared, rhs[i], uint64(100+i), 0, tier.mode); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
		b.Run("fused/"+tier.name, func(b *testing.B) {
			if err := micco.ContractBatch(ops, 0, tier.mode); err != nil { // warm
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for n := 0; n < b.N; n++ {
				if err := micco.ContractBatch(ops, 0, tier.mode); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run("parallel/fused/"+tier.name, func(b *testing.B) {
			// The cooperative pipeline at the paper's 8-worker pool width.
			// On multi-core hosts the fan-out's pack and compute work
			// spread across the pool; a single-CPU host (GOMAXPROCS=1)
			// degenerates to the serial fused path plus handoff overhead.
			p := micco.NewBatchPipeline(8)
			defer p.Close()
			if err := p.Run(ops, tier.mode); err != nil { // warm
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for n := 0; n < b.N; n++ {
				if err := p.Run(ops, tier.mode); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkWickExpansion measures the Wick-contraction front end compiling
// the bundled al_rhopi correlator into a staged plan.
func BenchmarkWickExpansion(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c := micco.A1RhoPi()
		c.TimeSlices = 4
		if _, err := c.BuildPlan(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationAsyncCopy measures the paper's future-work async-copy
// extension: per-device copy engines overlapping transfers with kernels.
func BenchmarkAblationAsyncCopy(b *testing.B) {
	w := benchWorkload(b)
	for _, mode := range []struct {
		name  string
		async bool
	}{{"SyncCopy", false}, {"AsyncCopy", true}} {
		b.Run(mode.name, func(b *testing.B) {
			cfg := micco.MI100(8)
			cfg.AsyncCopy = mode.async
			cluster, err := micco.NewCluster(cfg)
			if err != nil {
				b.Fatal(err)
			}
			s := micco.NewMICCOFixed(micco.Bounds{0, 2, 0})
			var gflops float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := micco.Run(context.Background(), w, s, cluster, micco.RunOptions{})
				if err != nil {
					b.Fatal(err)
				}
				gflops = res.GFLOPS
			}
			b.ReportMetric(gflops, "simGFLOPS")
		})
	}
}

// BenchmarkMultiNode measures the hierarchical multi-node extension
// against its node-Groute baseline on a 4x2-GPU system.
func BenchmarkMultiNode(b *testing.B) {
	w := benchWorkload(b)
	for _, mode := range []struct {
		name   string
		groute bool
	}{{"Hierarchical", false}, {"NodeGroute", true}} {
		b.Run(mode.name, func(b *testing.B) {
			cfg := micco.DefaultMultiNodeConfig(4, 2)
			cfg.Node.MemoryBytes = int64(1.2 * float64(w.TotalUniqueBytes()))
			cfg.GrouteNodes = mode.groute
			mc, err := micco.NewMultiNodeCluster(cfg)
			if err != nil {
				b.Fatal(err)
			}
			var gflops float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := micco.RunMultiNode(context.Background(), w, mc)
				if err != nil {
					b.Fatal(err)
				}
				gflops = res.GFLOPS
			}
			b.ReportMetric(gflops, "simGFLOPS")
		})
	}
}
