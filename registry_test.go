package micco_test

import (
	"context"
	"errors"
	"testing"

	"micco"
)

// stubPredictor satisfies BoundsPredictor without training a model.
type stubPredictor struct{}

func (stubPredictor) PredictBounds(micco.Features) micco.Bounds { return micco.Bounds{0, 1, 0} }

func TestSchedulerNamesStable(t *testing.T) {
	want := []string{"micco", "micco-naive", "micco-optimal", "hier", "groute", "roundrobin", "locality"}
	got := micco.SchedulerNames()
	if len(got) != len(want) {
		t.Fatalf("SchedulerNames() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("SchedulerNames() = %v, want %v", got, want)
		}
	}
}

func TestNewSchedulerByNameBuildsEveryEntry(t *testing.T) {
	for _, name := range micco.SchedulerNames() {
		s, err := micco.NewSchedulerByName(name, micco.Bounds{0, 2, 0}, stubPredictor{})
		if err != nil || s == nil {
			t.Errorf("NewSchedulerByName(%q): %v", name, err)
		}
	}
}

func TestNewSchedulerByNameErrors(t *testing.T) {
	if _, err := micco.NewSchedulerByName("heft", micco.Bounds{}, nil); !errors.Is(err, micco.ErrUnknownScheduler) {
		t.Errorf("unknown name: err = %v, want ErrUnknownScheduler", err)
	}
	if _, err := micco.NewSchedulerByName("micco-optimal", micco.Bounds{}, nil); !errors.Is(err, micco.ErrNilArgument) {
		t.Errorf("optimal without predictor: err = %v, want ErrNilArgument", err)
	}
}

func TestSchedulerNeedsPredictor(t *testing.T) {
	if !micco.SchedulerNeedsPredictor("micco-optimal") {
		t.Error("micco-optimal should need a predictor")
	}
	for _, name := range []string{"micco", "micco-naive", "hier", "groute", "roundrobin", "locality", "heft"} {
		if micco.SchedulerNeedsPredictor(name) {
			t.Errorf("%q should not need a predictor", name)
		}
	}
}

// TestRegistrySchedulersRun runs every registry scheduler end to end and
// checks that registry-built instances behave like the dedicated
// constructors.
func TestRegistrySchedulersRun(t *testing.T) {
	w, err := micco.GenerateWorkload(micco.WorkloadConfig{
		Seed: 4, Stages: 3, VectorSize: 8, TensorDim: 32, Batch: 1,
		Rank: micco.RankMeson, RepeatRate: 0.5, Dist: micco.Uniform,
	})
	if err != nil {
		t.Fatal(err)
	}
	cluster, err := micco.NewCluster(micco.MI100(2))
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range micco.SchedulerNames() {
		s, err := micco.NewSchedulerByName(name, micco.Bounds{0, 2, 0}, stubPredictor{})
		if err != nil {
			t.Fatal(err)
		}
		res, err := micco.Run(context.Background(), w, s, cluster, micco.RunOptions{})
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if res.GFLOPS <= 0 {
			t.Errorf("%s: degenerate run %+v", name, res)
		}
	}
}

func TestPublicAPICancellation(t *testing.T) {
	w, err := micco.GenerateWorkload(micco.WorkloadConfig{
		Seed: 4, Stages: 2, VectorSize: 6, TensorDim: 32, Batch: 1,
		Rank: micco.RankMeson, RepeatRate: 0.5, Dist: micco.Uniform,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	cluster, err := micco.NewCluster(micco.MI100(2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := micco.Run(ctx, w, micco.NewGroute(), cluster, micco.RunOptions{}); !errors.Is(err, context.Canceled) {
		t.Errorf("Run: err = %v, want context.Canceled", err)
	}

	mc, err := micco.NewMultiNodeCluster(micco.DefaultMultiNodeConfig(2, 1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := micco.RunMultiNode(ctx, w, mc); !errors.Is(err, context.Canceled) {
		t.Errorf("RunMultiNode: err = %v, want context.Canceled", err)
	}

	if _, err := micco.BuildCorpus(ctx, micco.CorpusConfig{Samples: 4, Seed: 1}); !errors.Is(err, context.Canceled) {
		t.Errorf("BuildCorpus: err = %v, want context.Canceled", err)
	}

	h := micco.NewHarness(micco.HarnessOptions{Quick: true, Seed: 7})
	if _, err := h.RunExperiment(ctx, "fig9"); !errors.Is(err, context.Canceled) {
		t.Errorf("RunExperiment: err = %v, want context.Canceled", err)
	}
}

func TestPublicSentinelErrors(t *testing.T) {
	cluster, err := micco.NewCluster(micco.MI100(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := micco.Run(context.Background(), nil, micco.NewGroute(), cluster, micco.RunOptions{}); !errors.Is(err, micco.ErrNilArgument) {
		t.Errorf("nil workload: err = %v, want ErrNilArgument", err)
	}
}
