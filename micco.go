// Package micco is a framework for scheduling many-body correlation
// function calculations across multiple GPUs, reproducing "MICCO: An
// Enhanced Multi-GPU Scheduling Framework for Many-Body Correlation
// Functions" (Wang, Ren, Chen, Edwards — IPDPS 2022).
//
// The package exposes five layers:
//
//   - A tensor substrate: batched complex hadron-node tensors with real
//     contraction kernels and exact cost accounting (Tensor, TensorDesc).
//   - A deterministic multi-GPU simulator standing in for the paper's
//     eight-MI100 node: per-device memory pools with LRU eviction, a
//     shared host link, and kernel/transfer timing (Cluster).
//   - Workload front ends: the paper's synthetic dataset generator
//     (GenerateWorkload) and a Redstar-like correlation-function pipeline
//     (Wick contraction, graph staging — A1RhoPi, F0D2, F0D4).
//   - Schedulers: MICCO itself (local reuse patterns, reuse bounds,
//     Algorithms 1-2) with naive/fixed/model-tuned bound settings, plus
//     the Groute-like baseline and ablation schedulers.
//   - The evaluation harness that regenerates every table and figure of
//     the paper (NewHarness, RunExperiment).
//
// Quick start:
//
//	w, _ := micco.GenerateWorkload(micco.WorkloadConfig{
//	    Seed: 1, Stages: 10, VectorSize: 64, TensorDim: 384, Batch: 8,
//	    Rank: micco.RankMeson, RepeatRate: 0.5, Dist: micco.Uniform,
//	})
//	cluster, _ := micco.NewCluster(micco.MI100(8))
//	s, _ := micco.NewSchedulerByName("micco-naive", micco.Bounds{}, nil)
//	res, _ := micco.Run(context.Background(), w, s, cluster, micco.RunOptions{})
//	fmt.Printf("%.0f GFLOPS\n", res.GFLOPS)
package micco

import (
	"context"
	"io"
	"math/rand"
	"net/http"

	"micco/internal/autotune"
	"micco/internal/baseline"
	"micco/internal/core"
	"micco/internal/experiment"
	"micco/internal/fault"
	"micco/internal/gpusim"
	"micco/internal/hier"
	"micco/internal/mlearn"
	"micco/internal/multinode"
	"micco/internal/obs"
	"micco/internal/obs/obshttp"
	"micco/internal/redstar"
	"micco/internal/report"
	"micco/internal/sched"
	"micco/internal/spectro"
	"micco/internal/supervise"
	"micco/internal/tensor"
	"micco/internal/wick"
	"micco/internal/workload"
)

// Tensor and shape types.
type (
	// Tensor is a dense batched complex tensor with real data.
	Tensor = tensor.Tensor
	// TensorDesc is tensor identity and shape metadata.
	TensorDesc = tensor.Desc
)

// Tensor ranks.
const (
	// RankMeson marks batched matrices (meson systems).
	RankMeson = tensor.RankMeson
	// RankBaryon marks batched rank-3 tensors (baryon systems).
	RankBaryon = tensor.RankBaryon
)

// Simulated cluster types.
type (
	// Cluster is the simulated multi-GPU node.
	Cluster = gpusim.Cluster
	// ClusterConfig describes the simulated hardware.
	ClusterConfig = gpusim.Config
	// Device is one simulated GPU.
	Device = gpusim.Device
	// DeviceStats are per-device simulation counters.
	DeviceStats = gpusim.DeviceStats
	// DevSet is a variable-width set of device IDs, the unit of the
	// cluster's constant-time residency index (Cluster.HoldersMask). Sets
	// confined to devices 0-63 live in one inline word and never touch the
	// heap; wider clusters spill into extra words transparently.
	DevSet = gpusim.DevSet
	// DeviceProfile describes one device class of a heterogeneous cluster
	// (ClusterConfig.Profiles/DeviceClass); zero fields inherit the
	// cluster-wide defaults.
	DeviceProfile = gpusim.DeviceProfile
	// ConfigError reports which ClusterConfig field failed validation and
	// why; it unwraps to ErrInvalidClusterConfig.
	ConfigError = gpusim.ConfigError
	// DeviceMask is a single-word bitset of device IDs.
	//
	// Deprecated: DeviceMask caps the cluster at 64 devices. Use DevSet,
	// which all residency APIs now return; DeviceMask remains for callers
	// that persisted raw masks (convert via DeviceMask.DevSet and
	// DevSet.InlineMask).
	DeviceMask = gpusim.DeviceMask
)

// ErrInvalidClusterConfig marks a ClusterConfig rejected by validation;
// errors.As against *ConfigError names the offending field.
var ErrInvalidClusterConfig = gpusim.ErrInvalidConfig

// MaxDevices is the largest simulated cluster the framework supports. The
// bound is a simulator memory-footprint cap, not a mask width: DevSet
// residency sets widen with the cluster.
const MaxDevices = gpusim.MaxDevices

// InlineDevices is the device count up to which a DevSet stays in its
// single inline word — the allocation-free fast path of the residency
// index and the scheduler hot paths.
const InlineDevices = gpusim.InlineDevices

// Workload types.
type (
	// Workload is a staged tensor-pair contraction stream.
	Workload = workload.Workload
	// WorkloadConfig parameterizes synthetic generation.
	WorkloadConfig = workload.Config
	// Distribution selects the repeated-data selection distribution.
	Distribution = workload.Distribution
	// Pair is one hadron contraction.
	Pair = workload.Pair
	// Stage is one dependency level of independent pairs.
	Stage = workload.Stage
	// Features are the per-stage data characteristics (Table I).
	Features = workload.Features
)

// Repeated-data distributions.
const (
	// Uniform repeats tensors uniformly over previous data.
	Uniform = workload.Uniform
	// Gaussian concentrates repeats on a hot set (biased distribution).
	Gaussian = workload.Gaussian
)

// Scheduling types.
type (
	// Scheduler assigns tensor pairs to GPUs.
	Scheduler = sched.Scheduler
	// SchedContext is the scheduler-visible engine state.
	SchedContext = sched.Context
	// RunOptions controls the execution engine.
	RunOptions = sched.Options
	// Result summarizes one run.
	Result = sched.Result
	// Bounds are the three reuse bounds of Table II.
	Bounds = core.Bounds
	// ReusePattern is the local reuse classification of a pair (Fig. 4).
	ReusePattern = core.ReusePattern
	// BoundsPredictor produces per-stage reuse bounds.
	BoundsPredictor = core.BoundsPredictor
	// Predictor is a trained reuse-bound regression model.
	Predictor = autotune.Predictor
	// TrainingCorpus is a reuse-bound training dataset.
	TrainingCorpus = mlearn.Dataset
	// CorpusConfig controls training-corpus generation.
	CorpusConfig = autotune.CorpusConfig
	// ModelKind selects a regression model family (Table IV).
	ModelKind = autotune.ModelKind
	// ModelScore is one Table IV row.
	ModelScore = autotune.ModelScore
)

// Fault-injection and recovery types. A FaultPlan passed through
// RunOptions.FaultPlan is replayed deterministically into the simulator;
// the engine recovers from device loss by re-running lost intermediates
// on the survivors, retries transient transfers under the plan's
// FaultRetry policy, and (with RunOptions.Checkpoint) snapshots every
// stage boundary so an interrupted run can resume via
// RunOptions.ResumeFrom.
type (
	// FaultPlan is a deterministic fault schedule.
	FaultPlan = fault.Plan
	// FaultEvent is one fault to inject.
	FaultEvent = fault.Event
	// FaultKind classifies fault events.
	FaultKind = fault.Kind
	// FaultRetry is the transient-failure retry/backoff policy.
	FaultRetry = fault.Retry
	// FaultGenConfig parameterizes GenerateFaultPlan.
	FaultGenConfig = fault.GenConfig
	// Checkpoint is a resumable stage-boundary snapshot of a run. Persist
	// it with SaveCheckpoint / SaveCheckpointFile (or automatically via
	// RunOptions.CheckpointDir) and bring it back with LoadCheckpoint /
	// LoadCheckpointFile.
	Checkpoint = sched.Checkpoint
	// RecoveryStats summarizes fault-recovery work done during a run.
	RecoveryStats = sched.RecoveryStats
)

// Fault event kinds.
const (
	// FaultDeviceLoss permanently removes a device mid-run.
	FaultDeviceLoss = fault.DeviceLoss
	// FaultDeviceRestore returns a lost device to service, memory cold.
	FaultDeviceRestore = fault.DeviceRestore
	// FaultLinkDegrade scales all transfer bandwidth by Factor.
	FaultLinkDegrade = fault.LinkDegrade
	// FaultMemShrink caps a device's memory pool at Factor of capacity.
	FaultMemShrink = fault.MemShrink
	// FaultTransientTransfer makes the next Failures fetches retryable-fail.
	FaultTransientTransfer = fault.TransientTransfer
)

// Local reuse patterns (paper Fig. 4).
const (
	TwoRepeatedSame = core.TwoRepeatedSame
	TwoRepeatedDiff = core.TwoRepeatedDiff
	OneRepeated     = core.OneRepeated
	TwoNew          = core.TwoNew
)

// Regression model families (paper Table IV).
const (
	LinearModel   = autotune.LinearModel
	BoostingModel = autotune.BoostingModel
	ForestModel   = autotune.ForestModel
)

// Correlation-function front-end types.
type (
	// Correlator is a correlation-function specification.
	Correlator = redstar.Correlator
	// Construction is one operator construction in a correlator basis.
	Construction = redstar.Construction
	// CorrelatorBuild is a compiled correlator: plan plus workload.
	CorrelatorBuild = redstar.Build
	// Operator is an interpolating operator (hadron) with quark content.
	Operator = wick.Operator
	// Quark is one quark field.
	Quark = wick.Quark
)

// Experiment types.
type (
	// Harness runs the paper's evaluation experiments.
	Harness = experiment.Harness
	// HarnessOptions configures a harness.
	HarnessOptions = experiment.Options
	// ExperimentTable is one rendered experiment result.
	ExperimentTable = experiment.Table
)

// MI100 returns the cluster configuration calibrated to the paper's
// testbed: n MI100-class devices with a shared host link.
func MI100(n int) ClusterConfig { return gpusim.MI100(n) }

// MI100Nodes returns a multi-node topology: nodes groups of perNode
// MI100-class devices, each node with its own host link and P2P fabric,
// joined by an InfiniBand-class inter-node interconnect (ClusterConfig
// NodeSize/InterNodeBandwidth/InterNodeLatency).
func MI100Nodes(nodes, perNode int) ClusterConfig { return gpusim.MI100Nodes(nodes, perNode) }

// NewCluster builds a simulated cluster.
func NewCluster(cfg ClusterConfig) (*Cluster, error) { return gpusim.NewCluster(cfg) }

// GenerateWorkload builds a deterministic synthetic workload.
func GenerateWorkload(cfg WorkloadConfig) (*Workload, error) { return workload.Generate(cfg) }

// WorkloadFromStages builds a workload from pre-staged pairs (front ends).
func WorkloadFromStages(name string, stages [][]Pair, inputs []TensorDesc) (*Workload, error) {
	return workload.FromStages(name, stages, inputs)
}

// NewMICCONaive returns the MICCO scheduler with all reuse bounds zero.
func NewMICCONaive() Scheduler { return core.NewNaive() }

// NewMICCOFixed returns the MICCO scheduler with constant reuse bounds.
func NewMICCOFixed(b Bounds) Scheduler { return core.NewFixed(b) }

// NewMICCOOptimal returns the MICCO scheduler with per-stage bounds from a
// trained predictor (the paper's MICCO-optimal).
func NewMICCOOptimal(p BoundsPredictor) Scheduler { return core.NewOptimal(p) }

// NewGroute returns the earliest-available-device baseline scheduler.
func NewGroute() Scheduler { return baseline.NewGroute() }

// NewRoundRobin returns the round-robin ablation scheduler.
func NewRoundRobin() Scheduler { return baseline.NewRoundRobin() }

// NewLocalityOnly returns the reuse-only ablation scheduler.
func NewLocalityOnly() Scheduler { return baseline.NewLocalityOnly() }

// NewHier returns the two-level node/device scheduler for multi-node
// topologies (ClusterConfig.NodeSize): an inter-node placer shards the
// correlation graph across nodes under nodeBound, and a MICCO-style pass
// places within the chosen node under bounds b. On single-node clusters it
// degenerates to a deterministic-tie-break MICCO.
func NewHier(nodeBound int, b Bounds) Scheduler { return hier.New(nodeBound, b) }

// ClassifyPair returns the local reuse pattern of p under ctx's residency.
func ClassifyPair(p Pair, ctx *SchedContext) ReusePattern { return core.Classify(p, ctx) }

// Run replays workload w through scheduler s on cluster c. Scheduler
// decisions replay sequentially; in numeric mode the real contractions run
// on a dependency-aware worker pool sized by RunOptions.Parallelism with
// bit-identical results at any setting. ctx cancels the run promptly.
func Run(ctx context.Context, w *Workload, s Scheduler, c *Cluster, opts RunOptions) (*Result, error) {
	return sched.Run(ctx, w, s, c, opts)
}

// Speedup returns r's throughput advantage over baseline.
func Speedup(r, baseline *Result) float64 { return sched.Speedup(r, baseline) }

// BuildCorpus sweeps reuse-bound settings over randomized workloads to
// produce a training corpus (Section IV-C). Samples are labeled on a
// CorpusConfig.Parallelism-sized worker pool; the corpus is identical at
// any setting. ctx cancels the build promptly.
func BuildCorpus(ctx context.Context, cfg CorpusConfig) (*TrainingCorpus, error) {
	return autotune.BuildCorpus(ctx, cfg)
}

// TrainPredictor fits a reuse-bound model of the given kind on corpus,
// holding out testFrac for the reported R-squared.
func TrainPredictor(corpus *TrainingCorpus, kind ModelKind, testFrac float64, seed int64) (*Predictor, error) {
	return autotune.Train(corpus, kind, testFrac, seed)
}

// EvaluateModels scores all three regression families on corpus (Table IV).
func EvaluateModels(corpus *TrainingCorpus, testFrac float64, seed int64) ([]ModelScore, error) {
	return autotune.EvaluateModels(corpus, testFrac, seed)
}

// A1RhoPi returns the bundled a1 -> rho pi correlator (Table VI row 1).
func A1RhoPi() *Correlator { return redstar.A1RhoPi() }

// F0D2 returns the bundled f0 (dimension-2 basis) correlator (row 2).
func F0D2() *Correlator { return redstar.F0D2() }

// F0D4 returns the bundled f0 (dimension-4 basis) correlator (row 3).
func F0D4() *Correlator { return redstar.F0D4() }

// BundledCorrelators returns the three Table VI correlators.
func BundledCorrelators() []*Correlator { return redstar.Bundled() }

// Meson builds a quark-antiquark interpolating operator.
func Meson(name, quark, antiquark string) Operator { return wick.Meson(name, quark, antiquark) }

// Baryon builds a three-quark interpolating operator. Baryon systems use
// rank-3 hadron blocks: set Correlator.Rank = RankBaryon.
func Baryon(name, q1, q2, q3 string) Operator { return wick.Baryon(name, q1, q2, q3) }

// Q returns a quark field of the given flavor; Qbar an antiquark.
func Q(flavor string) Quark    { return wick.Q(flavor) }
func Qbar(flavor string) Quark { return wick.Qbar(flavor) }

// NewHarness returns an experiment harness. Independent sweep points fan
// across HarnessOptions.Parallelism workers; rendered tables are
// byte-identical at any setting.
func NewHarness(opts HarnessOptions) *Harness { return experiment.New(opts) }

// Sentinel errors of the execution engine and simulator, for errors.Is.
var (
	// ErrNilArgument marks a nil workload, scheduler or cluster.
	ErrNilArgument = sched.ErrNilArgument
	// ErrInvalidDevice marks a device index outside the cluster.
	ErrInvalidDevice = sched.ErrInvalidDevice
	// ErrOutOfMemory marks a tensor that cannot fit on a device even after
	// evicting every unpinned block.
	ErrOutOfMemory = sched.ErrOutOfMemory
	// ErrDeviceLost marks an operation issued to a fault-injected failed
	// device.
	ErrDeviceLost = sched.ErrDeviceLost
	// ErrTransientTransfer marks a retryable injected transfer failure; the
	// engine surfaces it only after the FaultRetry budget is exhausted.
	ErrTransientTransfer = sched.ErrTransientTransfer
	// ErrTensorUnavailable marks a tensor with no live copy anywhere.
	ErrTensorUnavailable = sched.ErrTensorUnavailable
	// ErrClusterLost is returned when a fault plan removes the last
	// surviving device; with RunOptions.Checkpoint the Result carries the
	// last stage-boundary Checkpoint for resumption.
	ErrClusterLost = sched.ErrClusterLost
)

// Durable-checkpoint sentinel errors, for errors.Is.
var (
	// ErrCheckpointCorrupt marks a durable checkpoint that failed
	// structural validation: bad magic, truncation, CRC mismatch, or a
	// payload that does not decode to a valid snapshot.
	ErrCheckpointCorrupt = sched.ErrCheckpointCorrupt
	// ErrCheckpointVersion marks a durable checkpoint written by a format
	// version this build does not understand.
	ErrCheckpointVersion = sched.ErrCheckpointVersion
	// ErrWorkerPanic marks a panic contained in a numeric pipeline worker
	// or coordinator; the wrapped WorkerPanicError carries the stack.
	ErrWorkerPanic = tensor.ErrWorkerPanic
	// ErrRunStalled marks a supervised run whose final attempt was
	// cancelled by the progress watchdog.
	ErrRunStalled = supervise.ErrStalled
)

// Durability and supervision types (DESIGN.md §15).
type (
	// RunProgress is the monotone pair-completion counter external
	// watchdogs poll (RunOptions.Progress).
	RunProgress = sched.Progress
	// SuperviseConfig parameterizes a supervised run.
	SuperviseConfig = supervise.Config
	// SuperviseStats summarizes what the supervisor did.
	SuperviseStats = supervise.Stats
)

// SaveCheckpoint writes cp to w in the versioned durable format (CRC32
// integrity header + JSON payload), returning the encoded size.
func SaveCheckpoint(w io.Writer, cp *Checkpoint) (int, error) {
	return sched.EncodeCheckpoint(w, cp)
}

// LoadCheckpoint reads one durable checkpoint. Corrupted or truncated
// input returns an error wrapping ErrCheckpointCorrupt, an unknown format
// version one wrapping ErrCheckpointVersion; it never panics.
func LoadCheckpoint(r io.Reader) (*Checkpoint, error) {
	return sched.DecodeCheckpoint(r)
}

// SaveCheckpointFile atomically persists cp at path (temp write, fsync,
// rename, directory fsync): a reader never observes a partial file.
func SaveCheckpointFile(path string, cp *Checkpoint) (int, error) {
	return sched.SaveCheckpointFile(path, cp)
}

// LoadCheckpointFile reads and validates a durable checkpoint from path.
func LoadCheckpointFile(path string) (*Checkpoint, error) {
	return sched.LoadCheckpointFile(path)
}

// CheckpointFilePath returns the canonical durable-checkpoint path for a
// workload inside dir — the same path RunOptions.CheckpointDir writes.
func CheckpointFilePath(dir, workload string) string {
	return sched.CheckpointPath(dir, workload)
}

// Supervise runs a workload under the self-healing supervisor: retries
// checkpoint-bearing failures (cluster loss, contained worker panics,
// watchdog-detected stalls) from the last checkpoint with capped
// exponential backoff. See SuperviseConfig for the policy knobs.
func Supervise(ctx context.Context, cfg SuperviseConfig) (*Result, SuperviseStats, error) {
	return supervise.Run(ctx, cfg)
}

// LoadFaultPlan parses a JSON fault plan; unknown fields are rejected.
func LoadFaultPlan(r io.Reader) (*FaultPlan, error) { return fault.Load(r) }

// SaveFaultPlan serializes a fault plan as indented JSON.
func SaveFaultPlan(w io.Writer, p *FaultPlan) error { return fault.Save(w, p) }

// GenerateFaultPlan builds a randomized but deterministic fault plan that
// never loses device 0, so generated plans always run to completion.
func GenerateFaultPlan(cfg FaultGenConfig) *FaultPlan { return fault.Generate(cfg) }

// DefaultFaultRetry is the retry policy used when a plan specifies none.
func DefaultFaultRetry() FaultRetry { return fault.DefaultRetry() }

// ExperimentIDs lists the runnable experiments in paper order.
func ExperimentIDs() []string { return experiment.IDs() }

// Contract performs one hadron contraction with real arithmetic.
func Contract(a, b *Tensor, outID uint64, workers int) (*Tensor, error) {
	return tensor.Contract(a, b, outID, workers)
}

// ContractInto performs one hadron contraction writing into dst, reusing
// dst's storage when its capacity suffices. Results are bit-identical to
// Contract; dst may alias either operand.
func ContractInto(dst, a, b *Tensor, outID uint64, workers int) error {
	return tensor.ContractInto(dst, a, b, outID, workers)
}

// Kernel-tier types (DESIGN.md §12): contraction kernels run in one of
// two accuracy modes, selected per call or per run.
type (
	// KernelMode selects the contraction kernel accuracy tier.
	KernelMode = tensor.KernelMode
	// BatchOp is one contraction of a fused stage batch (ContractBatch).
	BatchOp = tensor.BatchOp
)

// Kernel accuracy tiers.
const (
	// KernelExact is the default tier: bit-identical to the seed scalar
	// kernels on every machine (vectorization never changes rounding).
	KernelExact = tensor.ModeExact
	// KernelFast permits FMA and AVX-512 fused micro-kernels selected by
	// runtime CPU detection, accurate to a documented ULP bound of
	// KernelExact rather than bit-identical. Deterministic for a fixed
	// machine and MICCO_KERNEL setting. Opt in per run through
	// RunOptions.FastKernels, or per call through ContractIntoMode.
	KernelFast = tensor.ModeFast
)

// ContractIntoMode is ContractInto with an explicit kernel tier.
func ContractIntoMode(dst, a, b *Tensor, outID uint64, workers int, mode KernelMode) error {
	return tensor.ContractIntoMode(dst, a, b, outID, workers, mode)
}

// ContractBatch executes all contractions of an independent stage as one
// fused batch: each unique operand tensor is packed into split-complex
// form exactly once, shared across every op that reads it. In KernelExact
// mode the result is bit-identical to running ContractInto per op. Ops
// must be mutually independent: no destination may alias another op's
// operand or destination.
func ContractBatch(ops []BatchOp, workers int, mode KernelMode) error {
	return tensor.ContractBatch(ops, workers, mode)
}

// BatchPipeline is a persistent cooperative worker pool for running many
// fused batches (ContractBatch calls) without re-spawning goroutines per
// call: workers park on a channel between batches and the caller's
// goroutine participates as a worker. The scheduler's numeric pool runs
// every dependency level through one of these. Not safe for concurrent
// Run/Do calls; Close releases the workers.
type BatchPipeline = tensor.BatchPipeline

// NewBatchPipeline returns a pipeline of the given width (minimum 1; the
// caller's goroutine is worker 0).
func NewBatchPipeline(workers int) *BatchPipeline {
	return tensor.NewBatchPipeline(workers)
}

// KernelFeatures describes the detected CPU vector features and the
// kernel tiers dispatch resolved for this process, including any
// MICCO_KERNEL override.
func KernelFeatures() string { return tensor.KernelInfo() }

// NewRandomTensor allocates a tensor with random complex entries.
func NewRandomTensor(d TensorDesc, seed int64) (*Tensor, error) {
	return tensor.NewRandom(d, newRand(seed))
}

func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// Trace types (simulator event recording).
type (
	// TraceEvent is one recorded simulator operation.
	TraceEvent = gpusim.Event
	// TraceEventKind classifies trace events.
	TraceEventKind = gpusim.EventKind
	// FeatureImportance is one feature's permutation importance.
	FeatureImportance = autotune.Importance
)

// Trace event kinds.
const (
	TraceKernel = gpusim.EventKernel
	TraceH2D    = gpusim.EventH2D
	TraceD2H    = gpusim.EventD2H
	TraceP2P    = gpusim.EventP2P
	TraceEvict  = gpusim.EventEvict
	// TraceInter marks an inter-node shipment over the shared interconnect.
	TraceInter = gpusim.EventInter
	// TraceFault marks an injected fault taking effect (instant event).
	TraceFault = gpusim.EventFault
)

// WriteChromeTrace serializes trace events in the Chrome tracing JSON
// format (load in chrome://tracing or ui.perfetto.dev).
func WriteChromeTrace(w io.Writer, events []TraceEvent) error {
	return gpusim.WriteChromeTrace(w, events)
}

// WriteChromeTraceMerged serializes trace events like WriteChromeTrace and
// merges scheduler decision records into the timeline as instant events,
// so the trace viewer shows why each pair landed where it did.
func WriteChromeTraceMerged(w io.Writer, events []TraceEvent, decisions []DecisionRecord) error {
	return gpusim.WriteChromeTraceMerged(w, events, decisions)
}

// WriteTraceSummary writes per-device busy-time aggregates of a trace.
func WriteTraceSummary(w io.Writer, events []TraceEvent) error {
	return gpusim.TraceSummary(w, events)
}

// Observability types (metrics registry, spans, decision records). Attach a
// registry through RunOptions.Obs; a nil registry costs nothing — every
// instrument call on the hot path degrades to a no-op without allocating.
type (
	// MetricsRegistry collects counters, gauges, histograms, spans, and
	// scheduler decision records for one or more runs.
	MetricsRegistry = obs.Registry
	// MetricsSnapshot is a point-in-time JSON-serializable export of a
	// registry (also returned as Result.Metrics when RunOptions.Obs is set).
	MetricsSnapshot = obs.Snapshot
	// DecisionRecord explains one placement: pattern, gating bound,
	// candidate scores, policy, and predicted vs actual transfer bytes.
	DecisionRecord = obs.DecisionRecord
	// CandidateScore is one device the scheduler considered, with its
	// primary selection score (lower wins).
	CandidateScore = obs.CandidateScore
	// Span is one finished timing span (run and stage phases).
	Span = obs.Span
)

// NewMetricsRegistry returns an empty observability registry.
func NewMetricsRegistry() *MetricsRegistry { return obs.New() }

// WritePrometheus writes a registry snapshot in the Prometheus text
// exposition format.
func WritePrometheus(w io.Writer, r *MetricsRegistry) error { return r.WritePrometheus(w) }

// WriteDecisions writes decision records as newline-delimited JSON.
func WriteDecisions(w io.Writer, recs []DecisionRecord) error {
	return obs.WriteDecisionsNDJSON(w, recs)
}

// ReadDecisions parses a WriteDecisions stream back into decision records.
func ReadDecisions(r io.Reader) ([]DecisionRecord, error) {
	return obs.ReadDecisionsNDJSON(r)
}

// LoadMetricsSnapshot parses a metrics snapshot JSON file (as written by
// miccorun -metrics or miccobench -metrics).
func LoadMetricsSnapshot(r io.Reader) (*MetricsSnapshot, error) {
	return report.LoadSnapshot(r)
}

// Flight-recorder types (DESIGN.md §13). A FlightRecorder attached to a
// MetricsRegistry retains the last-N simulator events, decision records
// and completed spans in bounded lock-cheap rings; recording allocates
// nothing, and with no recorder attached the cost is one atomic load per
// record. The execution engine dumps the recorder automatically on
// device-loss recovery and cluster loss.
type (
	// FlightRecorder is the always-on bounded post-mortem buffer.
	FlightRecorder = obs.FlightRecorder
	// FlightConfig sizes the recorder's rings (zero = defaults).
	FlightConfig = obs.FlightConfig
	// FlightSnapshot is a point-in-time copy of the recorder's tail.
	FlightSnapshot = obs.FlightSnapshot
	// FlightEvent is one retained simulator event (kind by name).
	FlightEvent = obs.FlightEvent
)

// NewFlightRecorder builds a flight recorder; attach it with
// MetricsRegistry.SetFlightRecorder.
func NewFlightRecorder(cfg FlightConfig) *FlightRecorder { return obs.NewFlightRecorder(cfg) }

// TraceEventsFromFlight converts retained flight-recorder events back to
// trace events (for WriteChromeTrace or report analyses), dropping any
// whose kind name is unknown.
func TraceEventsFromFlight(fes []FlightEvent) []TraceEvent {
	return gpusim.EventsFromFlight(fes)
}

// ObsServer is a running observability HTTP server (ServeObs).
type ObsServer = obshttp.Server

// ServeObs starts the live observability server on addr, exposing reg:
// /metrics (Prometheus text), /metrics.json, /decisions (NDJSON), /trace
// (Chrome trace of the flight recorder's recent activity), /flight,
// /healthz and /debug/pprof/*. It returns once the listener is bound;
// close with ObsServer.Close or ObsServer.Shutdown. miccorun exposes it
// behind -serve.
func ServeObs(addr string, reg *MetricsRegistry) (*ObsServer, error) {
	return obshttp.Serve(addr, reg)
}

// ObsHandler returns the observability server's handler for embedding
// into an existing mux.
func ObsHandler(reg *MetricsRegistry) http.Handler { return obshttp.Handler(reg) }

// Post-run analysis types (internal/report; DESIGN.md §13). BuildReport
// turns a run's trace, decisions and metrics snapshot into the critical
// path, stage waterfall and prediction-drift analyses rendered by
// cmd/miccoreport.
type (
	// ReportInput is the raw material of a report.
	ReportInput = report.Input
	// RunReport is a complete post-run analysis document.
	RunReport = report.Report
	// CriticalPath is the blame-annotated chain gating the makespan.
	CriticalPath = report.CriticalPath
	// CriticalPathSegment is one link of the critical path.
	CriticalPathSegment = report.Segment
	// StageUtilizationRow is one stage of the utilization waterfall.
	StageUtilizationRow = report.StageRow
	// DriftSummary aggregates predicted-vs-actual transfer drift.
	DriftSummary = report.Drift
	// MetricsDiff is a regression comparison of two metrics snapshots.
	MetricsDiff = report.Diff
)

// BuildReport assembles a post-run analysis from in.
func BuildReport(in ReportInput) *RunReport { return report.Build(in) }

// CriticalPathOf computes the critical path through events: a backward
// chain whose segments exactly partition [0, makespan], with per-device,
// per-kind and per-resource blame shares.
func CriticalPathOf(events []TraceEvent, makespan float64) *CriticalPath {
	return report.CriticalPathOf(events, makespan)
}

// DiffMetricsSnapshots compares two metrics snapshots series by series.
func DiffMetricsSnapshots(old, new *MetricsSnapshot) *MetricsDiff {
	return report.DiffSnapshots(old, new)
}

// LoadPredictor deserializes a predictor saved with Predictor.Save.
func LoadPredictor(r io.Reader) (*Predictor, error) { return autotune.LoadPredictor(r) }

// Multi-node extension types (the paper's stated future work).
type (
	// MultiNodeConfig describes a simulated multi-node system.
	MultiNodeConfig = multinode.Config
	// MultiNodeCluster is a set of simulated nodes behind a shared fabric.
	MultiNodeCluster = multinode.Cluster
	// MultiNodeResult summarizes a multi-node run.
	MultiNodeResult = multinode.Result
)

// DefaultMultiNodeConfig returns n nodes of g MI100-class GPUs behind an
// InfiniBand-class fabric.
func DefaultMultiNodeConfig(n, g int) MultiNodeConfig { return multinode.DefaultConfig(n, g) }

// NewMultiNodeCluster builds a multi-node cluster.
func NewMultiNodeCluster(cfg MultiNodeConfig) (*MultiNodeCluster, error) {
	return multinode.NewCluster(cfg)
}

// RunMultiNode executes a workload hierarchically across nodes: a
// node-level reuse-aware policy picks the node, a per-node MICCO instance
// picks the device, and missing operands stage over the shared fabric.
// ctx cancels the run promptly.
func RunMultiNode(ctx context.Context, w *Workload, mc *MultiNodeCluster) (*MultiNodeResult, error) {
	return multinode.Run(ctx, w, mc)
}

// Spectroscopy analysis types (downstream physics observables).
type (
	// CorrelatorSeries is a correlator time series C(t).
	CorrelatorSeries = spectro.Series
)

// EffectiveMass returns the effective-mass curve of a correlator series.
func EffectiveMass(s CorrelatorSeries) map[int]float64 { return spectro.EffectiveMass(s) }

// PlateauFit averages an effective-mass curve over [t0, t1].
func PlateauFit(meff map[int]float64, t0, t1 int) (mean, stddev float64, err error) {
	return spectro.Plateau(meff, t0, t1)
}

// FitCorrelator fits |C(t)| to A*exp(-m*t), returning amplitude and mass.
func FitCorrelator(s CorrelatorSeries) (amp, mass float64, err error) {
	return spectro.FitExponential(s)
}

// SyntheticCorrelator builds a single-state correlator for validation.
func SyntheticCorrelator(amp, mass float64, t0, t1 int) CorrelatorSeries {
	return spectro.Synthetic(amp, mass, t0, t1)
}

// LoadDeck parses a JSON correlator deck (the reproduction's analog of
// Redstar's XML input decks) into a validated Correlator.
func LoadDeck(r io.Reader) (*Correlator, error) { return redstar.LoadDeck(r) }

// SaveDeck serializes a correlator to the JSON deck format.
func SaveDeck(w io.Writer, c *Correlator) error { return redstar.SaveDeck(w, c) }
