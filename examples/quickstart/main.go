// Quickstart: generate a synthetic many-body-correlation workload, run it
// under the Groute baseline and under MICCO on a simulated eight-GPU node,
// and compare throughput, data reuse and memory traffic.
package main

import (
	"context"

	"fmt"
	"log"

	"micco"
)

func main() {
	// A workload shaped like the paper's headline configuration: ten
	// vectors of 64 tensor pairs, dim-384 hadron blocks, half the input
	// slots repeating earlier tensors.
	w, err := micco.GenerateWorkload(micco.WorkloadConfig{
		Seed:       1,
		Stages:     10,
		VectorSize: 64,
		TensorDim:  384,
		Batch:      8,
		Rank:       micco.RankMeson,
		RepeatRate: 0.5,
		Dist:       micco.Uniform,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workload: %s\n", w.Name)
	fmt.Printf("  %d contractions over %d stages, %d distinct inputs\n",
		w.NumPairs(), len(w.Stages), len(w.Inputs))
	fmt.Printf("  %.1f GFLOP of kernel work, %.1f GB working set, measured repeat rate %.0f%%\n\n",
		float64(w.TotalFLOPs())/1e9, float64(w.TotalUniqueBytes())/1e9,
		w.MeasuredRepeatRate()*100)

	cluster, err := micco.NewCluster(micco.MI100(8))
	if err != nil {
		log.Fatal(err)
	}

	schedulers := []micco.Scheduler{
		micco.NewGroute(),
		micco.NewMICCONaive(),
		micco.NewMICCOFixed(micco.Bounds{0, 2, 0}),
	}
	var baselineRes *micco.Result
	fmt.Printf("%-14s %9s %10s %11s %10s %10s\n",
		"scheduler", "GFLOPS", "makespan", "reuse hits", "H2D moved", "speedup")
	for _, s := range schedulers {
		res, err := micco.Run(context.Background(), w, s, cluster, micco.RunOptions{})
		if err != nil {
			log.Fatal(err)
		}
		if baselineRes == nil {
			baselineRes = res
		}
		fmt.Printf("%-14s %9.0f %9.3fs %11d %9.1fGB %9.2fx\n",
			s.Name(), res.GFLOPS, res.Makespan, res.Total.ReuseHits,
			float64(res.Total.H2DBytes)/1e9, micco.Speedup(res, baselineRes))
	}
	fmt.Println("\nMICCO turns repeated tensors into on-device reuse hits, cutting")
	fmt.Println("host-link traffic; the reuse bounds keep the load balanced while it")
	fmt.Println("does so (see examples/autotuning for the model-tuned bounds).")
}
