// Multi-node: the paper's future-work extension in action. A correlation
// workload runs across several simulated GPU nodes behind a shared
// InfiniBand-class fabric; the node-level reuse bound trades inter-node
// traffic against node balance — the same reuse/balance dial as inside a
// node, with a much more expensive wrong answer.
package main

import (
	"context"

	"fmt"
	"log"

	"micco"
)

func main() {
	w, err := micco.GenerateWorkload(micco.WorkloadConfig{
		Seed: 5, Stages: 8, VectorSize: 32, TensorDim: 768, Batch: 8,
		Rank: micco.RankMeson, RepeatRate: 0.7, Dist: micco.Uniform,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workload: %d contractions, %.1f GB working set\n\n",
		w.NumPairs(), float64(w.TotalUniqueBytes())/1e9)

	run := func(cfg micco.MultiNodeConfig, label string) *micco.MultiNodeResult {
		cfg.Node.MemoryBytes = int64(1.2 * float64(w.TotalUniqueBytes()))
		mc, err := micco.NewMultiNodeCluster(cfg)
		if err != nil {
			log.Fatal(err)
		}
		res, err := micco.RunMultiNode(context.Background(), w, mc)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-22s %7.0f GFLOPS  %6.2f GB over fabric  pairs/node %v\n",
			label, res.GFLOPS, float64(res.NetBytes)/1e9, res.PairsPerNode)
		return res
	}

	fmt.Println("4 nodes x 2 GPUs, sweeping the node-level reuse bound:")
	var best *micco.MultiNodeResult
	for _, bound := range []int{2, 8, 16, 32} {
		cfg := micco.DefaultMultiNodeConfig(4, 2)
		cfg.NodeReuseBound = bound
		res := run(cfg, fmt.Sprintf("  node bound %2d", bound))
		if best == nil || res.GFLOPS > best.GFLOPS {
			best = res
		}
	}
	cfg := micco.DefaultMultiNodeConfig(4, 2)
	cfg.GrouteNodes = true
	groute := run(cfg, "  node-Groute baseline")

	fmt.Printf("\nbest bounded policy: %.0f GFLOPS (%.2fx over the baseline)\n",
		best.GFLOPS, best.GFLOPS/groute.GFLOPS)
	fmt.Println("small bounds flood the fabric; unbounded concentration strands")
	fmt.Println("three nodes' GPUs — the optimum sits in between, exactly the")
	fmt.Println("reuse/balance trade-off the paper studies, one level up.")
}
