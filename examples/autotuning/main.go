// Autotuning: build the reuse-bound training corpus by sweeping bound
// settings on the simulator, train the paper's three regression models,
// compare their accuracy (Table IV), and show MICCO-optimal using the
// Random Forest's online inference to pick per-stage bounds.
package main

import (
	"context"

	"fmt"
	"log"

	"micco"
)

func main() {
	// A reduced corpus keeps this example fast; cmd/miccotrain builds the
	// full 300-sample corpus of the paper.
	fmt.Println("building training corpus (sweeping reuse bounds per sample)...")
	corpus, err := micco.BuildCorpus(context.Background(), micco.CorpusConfig{
		Samples: 80, Seed: 11, NumGPU: 8, Stages: 3, Replicas: 3,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("corpus: %d samples x %d features -> %d reuse bounds\n\n",
		corpus.Len(), corpus.NumFeatures(), corpus.NumOutputs())

	fmt.Println("model comparison (held-out R2, cf. paper Table IV):")
	scores, err := micco.EvaluateModels(corpus, 0.2, 13)
	if err != nil {
		log.Fatal(err)
	}
	for _, s := range scores {
		fmt.Printf("  %-20s %.2f\n", s.Kind, s.R2)
	}

	pred, err := micco.TrainPredictor(corpus, micco.ForestModel, 0.2, 13)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ndeployed: %v\n\n", pred.Kind)

	// Compare MICCO-naive with MICCO-optimal on workloads the model never
	// saw, across both distributions.
	fmt.Printf("%-9s %-7s %12s %14s %8s\n", "dist", "repeat", "MICCO-naive", "MICCO-optimal", "gain")
	for _, dist := range []micco.Distribution{micco.Uniform, micco.Gaussian} {
		for _, rate := range []float64{0.5, 1.0} {
			w, err := micco.GenerateWorkload(micco.WorkloadConfig{
				Seed: 99 + int64(rate*10), Stages: 10, VectorSize: 64,
				TensorDim: 384, Batch: 8, Rank: micco.RankMeson,
				RepeatRate: rate, Dist: dist,
			})
			if err != nil {
				log.Fatal(err)
			}
			cfg := micco.MI100(8)
			cfg.MemoryBytes = 4 << 30
			cluster, err := micco.NewCluster(cfg)
			if err != nil {
				log.Fatal(err)
			}
			naive, err := micco.Run(context.Background(), w, micco.NewMICCONaive(), cluster, micco.RunOptions{})
			if err != nil {
				log.Fatal(err)
			}
			opt, err := micco.Run(context.Background(), w, micco.NewMICCOOptimal(pred), cluster, micco.RunOptions{})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-9s %5.0f%% %11.0f %13.0f %7.2fx\n",
				dist, rate*100, naive.GFLOPS, opt.GFLOPS, micco.Speedup(opt, naive))
		}
	}
	fmt.Println("\nthe model widens the bounds when reuse is plentiful and tightens")
	fmt.Println("them when imbalance or eviction pressure would eat the gains.")
}
