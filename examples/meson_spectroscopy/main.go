// Meson spectroscopy: build a correlation function the way Redstar does —
// define interpolating operators with explicit quark content, expand the
// Wick contractions into unique contraction graphs over many time slices,
// stage them, schedule the contraction stream across simulated GPUs, and
// finally evaluate the correlator C(t) numerically with real complex
// arithmetic.
package main

import (
	"context"

	"fmt"
	"log"
	"math/cmplx"

	"micco"
)

func main() {
	// A custom two-flavor meson system: a rho-like source against both a
	// rho-like single particle and a two-pion construction at the sink.
	corr := &micco.Correlator{
		Name: "rho_to_pipi",
		Constructions: []micco.Construction{
			{Name: "rho", Ops: []micco.Operator{micco.Meson("rho", "u", "d")}},
			{Name: "pipi", Ops: []micco.Operator{
				micco.Meson("pi+", "u", "d"),
				micco.Meson("pi0", "d", "d"),
			}},
		},
		Momenta:    3,
		TimeSlices: 12,
		TensorDim:  192,
		Batch:      4,
	}
	if err := corr.Validate(); err != nil {
		log.Fatal(err)
	}
	build, err := corr.BuildPlan()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("correlator %s:\n", corr.Name)
	fmt.Printf("  %d unique contraction graphs over %d time slices\n",
		build.NumGraphs, corr.TimeSlices)
	fmt.Printf("  %d hadron blocks, %d hadron contractions in %d stages\n",
		build.Blocks, len(build.Plan.Ops), build.Plan.NumStages())
	fmt.Printf("  %d contractions shared across graphs (cross-graph reuse)\n\n",
		build.Plan.SharedOps)

	// Schedule the contraction stream on a simulated four-GPU node.
	cluster, err := micco.NewCluster(micco.MI100(4))
	if err != nil {
		log.Fatal(err)
	}
	gr, err := micco.Run(context.Background(), build.Workload, micco.NewGroute(), cluster, micco.RunOptions{})
	if err != nil {
		log.Fatal(err)
	}
	mc, err := micco.Run(context.Background(), build.Workload, micco.NewMICCONaive(), cluster, micco.RunOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("scheduling on 4 simulated GPUs:\n")
	fmt.Printf("  Groute: %6.0f GFLOPS (%d reuse hits)\n", gr.GFLOPS, gr.Total.ReuseHits)
	fmt.Printf("  MICCO:  %6.0f GFLOPS (%d reuse hits) -> %.2fx\n\n",
		mc.GFLOPS, mc.Total.ReuseHits, micco.Speedup(mc, gr))

	// Evaluate the correlator for real on a scaled-down copy (small
	// blocks keep the CPU arithmetic fast): random hadron blocks stand in
	// for the perambulators, and C(t) is the traced sum over each sink
	// time slice's graphs.
	small := *corr
	small.TensorDim, small.Batch = 32, 1
	smallBuild, err := small.BuildPlan()
	if err != nil {
		log.Fatal(err)
	}
	corrSeries, err := smallBuild.EvaluateNumeric(7, 0)
	if err != nil {
		log.Fatal(err)
	}
	series := micco.CorrelatorSeries(corrSeries)
	meff := micco.EffectiveMass(series)
	fmt.Println("numeric correlator (random blocks; magnitudes only):")
	for _, t := range series.Times() {
		mag := cmplx.Abs(series[t])
		line := fmt.Sprintf("  C(t=%2d)  |C| = %10.4e", t, mag)
		if m, ok := meff[t]; ok {
			line += fmt.Sprintf("   m_eff = %+6.3f", m)
		}
		fmt.Println(line)
	}

	// With random blocks the series does not decay; on physical propagator
	// data the same analysis extracts the spectrum. Demonstrate on a
	// synthetic single-state correlator with a known mass.
	truth := 0.475
	phys := micco.SyntheticCorrelator(12.0, truth, 1, 12)
	amp, mass, err := micco.FitCorrelator(phys)
	if err != nil {
		log.Fatal(err)
	}
	plateau, sd, err := micco.PlateauFit(micco.EffectiveMass(phys), 1, 10)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nspectroscopy check on a synthetic single-state correlator:\n")
	fmt.Printf("  true mass %.3f -> exponential fit m = %.3f (A = %.1f),\n", truth, mass, amp)
	fmt.Printf("  effective-mass plateau %.3f +/- %.1e\n", plateau, sd)
	fmt.Println("\nwith physical propagator data, this same fit extracts the")
	fmt.Println("rho / two-pion spectrum from the scheduled contraction stream.")
}
