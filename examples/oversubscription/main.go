// Oversubscription: shrink the simulated GPU pools until the working set
// no longer fits and watch the schedulers diverge — MICCO's data reuse
// avoids allocations, and its memory-eviction-sensitive policy steers
// pairs toward devices with headroom, so it evicts far less than the
// balance-only baseline (paper Figs. 3 and 11).
package main

import (
	"context"

	"fmt"
	"log"

	"micco"
)

func main() {
	w, err := micco.GenerateWorkload(micco.WorkloadConfig{
		Seed: 21, Stages: 10, VectorSize: 64, TensorDim: 384, Batch: 8,
		Rank: micco.RankMeson, RepeatRate: 0.5, Dist: micco.Gaussian,
	})
	if err != nil {
		log.Fatal(err)
	}
	working := w.TotalUniqueBytes()
	fmt.Printf("workload working set: %.1f GB across inputs and intermediates\n\n", float64(working)/1e9)

	fmt.Printf("%-9s %-14s %8s %10s %10s %9s\n",
		"oversub", "scheduler", "GFLOPS", "evictions", "writeback", "speedup")
	for _, ratio := range []float64{1.0, 1.25, 1.5, 2.0} {
		// Size the eight pools so the working set is ratio x aggregate
		// memory; above 1.0 something must always be evicted.
		cfg := micco.MI100(8)
		cfg.MemoryBytes = int64(float64(working) / 8 / ratio)
		cluster, err := micco.NewCluster(cfg)
		if err != nil {
			log.Fatal(err)
		}
		var base *micco.Result
		for _, s := range []micco.Scheduler{micco.NewGroute(), micco.NewMICCOFixed(micco.Bounds{0, 2, 0})} {
			res, err := micco.Run(context.Background(), w, s, cluster, micco.RunOptions{})
			if err != nil {
				log.Fatal(err)
			}
			if base == nil {
				base = res
			}
			fmt.Printf("%7.0f%% %-14s %8.0f %10d %8.1fGB %8.2fx\n",
				ratio*100, s.Name(), res.GFLOPS, res.Total.Evictions,
				float64(res.Total.D2HBytes)/1e9, micco.Speedup(res, base))
		}
		fmt.Println()
	}
	fmt.Println("as pools shrink, throughput falls for everyone, but MICCO keeps")
	fmt.Println("more of it: reuse avoids new allocations (fewer evictions) and the")
	fmt.Println("eviction-sensitive policy spends free memory where it exists.")
}
