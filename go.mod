module micco

go 1.22
