package micco_test

import (
	"context"
	"errors"
	"strings"
	"testing"

	"micco"
)

func testWorkload(t *testing.T) *micco.Workload {
	t.Helper()
	w, err := micco.GenerateWorkload(micco.WorkloadConfig{
		Seed: 1, Stages: 6, VectorSize: 16, TensorDim: 128, Batch: 4,
		Rank: micco.RankMeson, RepeatRate: 0.6, Dist: micco.Uniform,
	})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestPublicAPIEndToEnd(t *testing.T) {
	w := testWorkload(t)
	cluster, err := micco.NewCluster(micco.MI100(4))
	if err != nil {
		t.Fatal(err)
	}
	groute, err := micco.Run(context.Background(), w, micco.NewGroute(), cluster, micco.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	naive, err := micco.Run(context.Background(), w, micco.NewMICCONaive(), cluster, micco.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if naive.GFLOPS <= 0 || groute.GFLOPS <= 0 {
		t.Fatal("degenerate results through public API")
	}
	if micco.Speedup(naive, groute) <= 1.0 {
		t.Errorf("MICCO-naive speedup %.2f over Groute, want > 1",
			micco.Speedup(naive, groute))
	}
	fixed, err := micco.Run(context.Background(), w, micco.NewMICCOFixed(micco.Bounds{1, 1, 1}), cluster, micco.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if fixed.GFLOPS <= 0 {
		t.Error("fixed-bounds run failed")
	}
	for _, s := range []micco.Scheduler{micco.NewRoundRobin(), micco.NewLocalityOnly()} {
		if _, err := micco.Run(context.Background(), w, s, cluster, micco.RunOptions{}); err != nil {
			t.Errorf("%s: %v", s.Name(), err)
		}
	}
}

// TestPublicAPIFaultInjection drives the fault surface end to end through
// the facade: a faulted run matches the fault-free fingerprint, plan
// save/load round-trips, and checkpoint/resume recovers from total
// cluster loss.
func TestPublicAPIFaultInjection(t *testing.T) {
	w := testWorkload(t)
	cluster, err := micco.NewCluster(micco.MI100(4))
	if err != nil {
		t.Fatal(err)
	}
	clean, err := micco.Run(context.Background(), w, micco.NewRoundRobin(), cluster, micco.RunOptions{Numeric: true, NumericSeed: 7})
	if err != nil {
		t.Fatal(err)
	}

	plan := &micco.FaultPlan{Events: []micco.FaultEvent{
		{Kind: micco.FaultDeviceLoss, Stage: 1, Pair: 1, Device: 2},
		{Kind: micco.FaultLinkDegrade, Stage: 2, Pair: -1, Factor: 0.5},
		{Kind: micco.FaultTransientTransfer, Stage: 3, Pair: 0, Failures: 2},
		{Kind: micco.FaultDeviceRestore, Stage: 4, Pair: -1, Device: 2},
	}}
	var buf strings.Builder
	if err := micco.SaveFaultPlan(&buf, plan); err != nil {
		t.Fatal(err)
	}
	plan2, err := micco.LoadFaultPlan(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}

	faulted, err := micco.Run(context.Background(), w, micco.NewRoundRobin(), cluster,
		micco.RunOptions{Numeric: true, NumericSeed: 7, FaultPlan: plan2})
	if err != nil {
		t.Fatal(err)
	}
	if faulted.NumericFingerprint != clean.NumericFingerprint {
		t.Errorf("faulted fingerprint %v != clean %v", faulted.NumericFingerprint, clean.NumericFingerprint)
	}
	if faulted.Recovery.FaultsInjected != len(plan.Events) {
		t.Errorf("injected %d faults, want %d", faulted.Recovery.FaultsInjected, len(plan.Events))
	}
	if faulted.Recovery.DevicesLost != 1 || faulted.Recovery.DevicesRestored != 1 {
		t.Errorf("lost/restored = %d/%d, want 1/1",
			faulted.Recovery.DevicesLost, faulted.Recovery.DevicesRestored)
	}

	// Lose every device: ErrClusterLost plus a resumable checkpoint.
	fatal := &micco.FaultPlan{Events: []micco.FaultEvent{
		{Kind: micco.FaultDeviceLoss, Stage: 2, Pair: 0, Device: 0},
		{Kind: micco.FaultDeviceLoss, Stage: 2, Pair: 0, Device: 1},
		{Kind: micco.FaultDeviceLoss, Stage: 2, Pair: 0, Device: 2},
		{Kind: micco.FaultDeviceLoss, Stage: 2, Pair: 0, Device: 3},
	}}
	res, err := micco.Run(context.Background(), w, micco.NewRoundRobin(), cluster,
		micco.RunOptions{Numeric: true, NumericSeed: 7, FaultPlan: fatal, Checkpoint: true})
	if !errors.Is(err, micco.ErrClusterLost) {
		t.Fatalf("got %v, want ErrClusterLost", err)
	}
	if res == nil || res.Checkpoint == nil {
		t.Fatal("no checkpoint attached to the failed run")
	}
	fresh, err := micco.NewCluster(micco.MI100(4))
	if err != nil {
		t.Fatal(err)
	}
	resumed, err := micco.Run(context.Background(), w, micco.NewRoundRobin(), fresh,
		micco.RunOptions{Numeric: true, NumericSeed: 7, ResumeFrom: res.Checkpoint})
	if err != nil {
		t.Fatal(err)
	}
	if resumed.NumericFingerprint != clean.NumericFingerprint {
		t.Errorf("resumed fingerprint %v != clean %v", resumed.NumericFingerprint, clean.NumericFingerprint)
	}
}

func TestPublicAPITrainAndOptimal(t *testing.T) {
	corpus, err := micco.BuildCorpus(context.Background(), micco.CorpusConfig{
		Samples: 20, Seed: 3, NumGPU: 4, Stages: 3, Batch: 2, Replicas: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	pred, err := micco.TrainPredictor(corpus, micco.ForestModel, 0.2, 7)
	if err != nil {
		t.Fatal(err)
	}
	pred.NumGPU = 4
	w := testWorkload(t)
	cluster, err := micco.NewCluster(micco.MI100(4))
	if err != nil {
		t.Fatal(err)
	}
	res, err := micco.Run(context.Background(), w, micco.NewMICCOOptimal(pred), cluster, micco.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.GFLOPS <= 0 {
		t.Error("MICCO-optimal run failed through public API")
	}
	scores, err := micco.EvaluateModels(corpus, 0.2, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(scores) != 3 {
		t.Errorf("EvaluateModels returned %d scores", len(scores))
	}
}

func TestPublicAPICorrelators(t *testing.T) {
	cs := micco.BundledCorrelators()
	if len(cs) != 3 {
		t.Fatalf("bundled correlators = %d", len(cs))
	}
	c := micco.A1RhoPi()
	c.TimeSlices = 2
	c.Momenta = 2
	c.TensorDim = 8
	c.Batch = 1
	b, err := c.BuildPlan()
	if err != nil {
		t.Fatal(err)
	}
	if b.Workload == nil || b.NumGraphs == 0 {
		t.Fatal("correlator build degenerate")
	}
	cluster, err := micco.NewCluster(micco.MI100(2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := micco.Run(context.Background(), b.Workload, micco.NewMICCONaive(), cluster, micco.RunOptions{}); err != nil {
		t.Fatal(err)
	}
	corr, err := b.EvaluateNumeric(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(corr) != 2 {
		t.Errorf("correlator series length %d, want 2", len(corr))
	}
}

func TestPublicAPITensors(t *testing.T) {
	a, err := micco.NewRandomTensor(micco.TensorDesc{ID: 1, Rank: micco.RankMeson, Dim: 8, Batch: 2}, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := micco.NewRandomTensor(micco.TensorDesc{ID: 2, Rank: micco.RankMeson, Dim: 8, Batch: 2}, 2)
	if err != nil {
		t.Fatal(err)
	}
	out, err := micco.Contract(a, b, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if out.ID != 3 || out.Dim != 8 {
		t.Errorf("contract output %v", out.Desc)
	}
}

func TestPublicAPICustomOperators(t *testing.T) {
	pi := micco.Meson("pi", "u", "d")
	if len(pi.Quarks) != 2 {
		t.Error("Meson helper")
	}
	if micco.Q("u").Bar || !micco.Qbar("u").Bar {
		t.Error("quark helpers")
	}
	custom := &micco.Correlator{
		Name: "custom",
		Constructions: []micco.Construction{
			{Name: "pi", Ops: []micco.Operator{micco.Meson("pi", "u", "d")}},
		},
		Momenta: 1, TimeSlices: 2, TensorDim: 8, Batch: 1,
	}
	if err := custom.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, err := custom.BuildPlan(); err != nil {
		t.Fatal(err)
	}
}

func TestPublicAPIHarnessQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("harness runs are slow")
	}
	h := micco.NewHarness(micco.HarnessOptions{Quick: true, Seed: 5})
	ids := micco.ExperimentIDs()
	if len(ids) != 9 {
		t.Fatalf("experiments = %d, want 9 (every table and figure)", len(ids))
	}
	// Smoke-run the two fastest experiments through the public API.
	for _, id := range []string{"tab5", "fig10"} {
		tab, err := h.RunExperiment(context.Background(), id)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		var sb strings.Builder
		if err := tab.Render(&sb); err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(sb.String(), tab.ID) {
			t.Errorf("%s render missing ID", id)
		}
		var csv strings.Builder
		if err := tab.CSV(&csv); err != nil {
			t.Fatal(err)
		}
		if len(csv.String()) == 0 {
			t.Errorf("%s CSV empty", id)
		}
	}
}
