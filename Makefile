GO ?= go

.PHONY: build test vet race check bench benchsmoke benchguard soak

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# The concurrent engine, corpus builder and experiment harness all run
# under the race detector; race is part of check and must stay clean.
race:
	$(GO) test -race ./...

check: vet test race benchsmoke benchguard

# benchsmoke compiles and runs every benchmark once — including the
# scheduler-overhead suite in internal/sched — so check catches bit-rot
# in benchmark code without paying for real measurements.
benchsmoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

# benchguard checks the recorded performance numbers. Scheduler: any
# BenchmarkSchedulerAssign* entry in BENCH_sched.json (obs-on variants
# excepted) must report 0 allocs/op and stay within 2x the _baseline/
# ns/op merged into the same document. Kernels: every BenchmarkContraction*
# entry in BENCH_kernel.json must stay within 2.5x its baseline ns/op
# (allocation check off — kernel benchmarks legitimately allocate; the
# wider tolerance absorbs machine throttling on shared runners). Re-run
# `make bench` to refresh the recordings before the guard.
benchguard:
	$(GO) run ./cmd/benchjson -guard BENCH_sched.json -guard-tol 2.0
	$(GO) run ./cmd/benchjson -guard BENCH_kernel.json -guard-tol 2.5 \
		-guard-prefix BenchmarkContraction -guard-max-allocs -1

# soak runs the chaos harness: seeded random fault plans × random
# kill-points (process death simulated by dropping all in-memory state and
# resuming from the durable checkpoint file alone) × every registered
# scheduler × serial/parallel numeric execution × reclaim on/off, each
# iteration asserting the bit-identical exact-mode fingerprint of the
# fault-free run and probing the checkpoint file with seeded corruption.
# MICCO_SOAK_SEEDS scales the run (default 3 seeds, a few seconds;
# CI uses 8).
soak:
	$(GO) test -count=1 -v -run TestChaosSoak ./internal/chaos

# bench measures the contraction-kernel component benchmarks — exact and
# fast tiers, pairwise, stage-fused and pipeline-parallel — with
# allocation stats and records them as BENCH_kernel.json with the
# pre-fast-tier baseline merged in (via cmd/benchjson, which tees the raw
# output through), then the scheduler-overhead suite — per-placement
# cost, obs on/off, the parallel numeric pipeline and the reclaim-arena
# contention probe — as BENCH_sched.json with the pre-change baseline
# numbers merged in for comparison.
bench:
	$(GO) test -run '^$$' -bench 'Contraction' -benchmem . \
		| $(GO) run ./cmd/benchjson -baseline BENCH_kernel_baseline.json -o BENCH_kernel.json
	$(GO) test -run '^$$' -bench 'SchedulerAssign|RunScheduleOnly|NumericPipeline|ArenaContention' -benchmem ./internal/sched \
		| $(GO) run ./cmd/benchjson -baseline BENCH_sched_baseline.json -o BENCH_sched.json
