GO ?= go

.PHONY: build test vet race check bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# The concurrent engine, corpus builder and experiment harness all run
# under the race detector; race is part of check and must stay clean.
race:
	$(GO) test -race ./...

check: vet test race

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' .
