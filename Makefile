GO ?= go

.PHONY: build test vet race check bench benchsmoke

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# The concurrent engine, corpus builder and experiment harness all run
# under the race detector; race is part of check and must stay clean.
race:
	$(GO) test -race ./...

check: vet test race benchsmoke

# benchsmoke compiles and runs every benchmark once — including the
# scheduler-overhead suite in internal/sched — so check catches bit-rot
# in benchmark code without paying for real measurements.
benchsmoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

# bench measures the contraction-kernel component benchmarks with
# allocation stats and records them as BENCH_kernel.json (via
# cmd/benchjson, which tees the raw output through), then the
# scheduler-overhead suite as BENCH_sched.json with the pre-index
# baseline numbers merged in for comparison.
bench:
	$(GO) test -run '^$$' -bench 'ContractionKernel' -benchmem . \
		| $(GO) run ./cmd/benchjson -o BENCH_kernel.json
	$(GO) test -run '^$$' -bench 'SchedulerAssign|RunScheduleOnly' -benchmem ./internal/sched \
		| $(GO) run ./cmd/benchjson -baseline BENCH_sched_baseline.json -o BENCH_sched.json
