package micco_test

import (
	"bytes"
	"context"
	"fmt"
	"strings"
	"testing"

	"micco"
)

func obsWorkload(t *testing.T) *micco.Workload {
	t.Helper()
	w, err := micco.GenerateWorkload(micco.WorkloadConfig{
		Seed: 11, Stages: 6, VectorSize: 8, TensorDim: 64, Batch: 2,
		Rank: micco.RankMeson, RepeatRate: 0.6, Dist: micco.Uniform,
	})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// obsCluster sizes device pools to a third of the unique working set, so
// runs generate real eviction and write-back traffic to reconcile.
func obsCluster(t *testing.T, w *micco.Workload, gpus int) *micco.Cluster {
	t.Helper()
	cfg := micco.MI100(gpus)
	cfg.MemoryBytes = w.TotalUniqueBytes() / 8
	c, err := micco.NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestDecisionRecordsReconcileWithDeviceStats checks the observability
// layer against the simulator's own accounting: summing the per-placement
// decision records must reproduce the run's DeviceStats totals exactly,
// and the engine's pattern counters must agree with both the records and
// (for MICCO) the scheduler's internal pattern histogram.
func TestDecisionRecordsReconcileWithDeviceStats(t *testing.T) {
	cases := []struct {
		name string
		s    micco.Scheduler
	}{
		{"micco-naive", micco.NewMICCONaive()},
		{"groute", micco.NewGroute()},
	}
	w := obsWorkload(t)
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cluster := obsCluster(t, w, 4)
			reg := micco.NewMetricsRegistry()
			res, err := micco.Run(context.Background(), w, tc.s, cluster, micco.RunOptions{Obs: reg})
			if err != nil {
				t.Fatal(err)
			}
			recs := reg.Decisions()
			if len(recs) != w.NumPairs() {
				t.Fatalf("decision records = %d, want %d (one per pair)", len(recs), w.NumPairs())
			}

			var actual, d2h, evictions, predicted int64
			var patterns [4]int64
			for _, r := range recs {
				actual += r.ActualBytes
				d2h += r.ActualD2HBytes
				evictions += r.Evictions
				predicted += r.PredictedBytes
				patterns[int(r.Pattern)]++
			}
			if want := res.Total.H2DBytes + res.Total.P2PBytes; actual != want {
				t.Errorf("sum of ActualBytes = %d, want H2D+P2P = %d", actual, want)
			}
			if d2h != res.Total.D2HBytes {
				t.Errorf("sum of ActualD2HBytes = %d, want D2H = %d", d2h, res.Total.D2HBytes)
			}
			if evictions != res.Total.Evictions {
				t.Errorf("sum of Evictions = %d, want %d", evictions, res.Total.Evictions)
			}
			// The simulator pins operands and fetches each exactly once, so
			// for placements that evicted nothing the engine's prediction
			// (non-resident operand bytes on the chosen device) must equal
			// what the simulator charged. Under eviction, actual may exceed
			// predicted: fetching one operand can evict the other before it
			// is pinned, forcing a re-fetch — exactly the divergence the two
			// fields exist to expose.
			for i, r := range recs {
				if r.Evictions == 0 && r.PredictedBytes != r.ActualBytes {
					t.Errorf("record %d: predicted %d != actual %d without evictions",
						i, r.PredictedBytes, r.ActualBytes)
				}
			}
			if predicted > actual {
				t.Errorf("sum of PredictedBytes = %d exceeds ActualBytes sum %d", predicted, actual)
			}
			if evictions == 0 {
				t.Error("run produced no evictions; pool sizing no longer stresses memory")
			}

			// Engine pattern counters reconcile with the records.
			for p, n := range patterns {
				name := fmt.Sprintf("micco_sched_pattern_total{pattern=%q}", micco.ReusePattern(p).String())
				if got := reg.Counter(name).Value(); got != float64(n) {
					t.Errorf("%s = %v, want %d", name, got, n)
				}
			}
			// And, for MICCO, with the scheduler's own histogram.
			if pc, ok := tc.s.(interface{ PatternCounts() [4]int64 }); ok {
				if pc.PatternCounts() != patterns {
					t.Errorf("scheduler pattern counts = %v, records say %v", pc.PatternCounts(), patterns)
				}
			}

			// Every record carries the fields only the scheduler knows.
			for i, r := range recs {
				if r.Policy == "" {
					t.Fatalf("record %d has no policy: %+v", i, r)
				}
				if len(r.Candidates) == 0 {
					t.Fatalf("record %d has no candidates: %+v", i, r)
				}
			}

			if res.Metrics == nil {
				t.Fatal("Result.Metrics nil with observability enabled")
			}
			if res.Metrics.Decisions != len(recs) {
				t.Errorf("snapshot decision count = %d, want %d", res.Metrics.Decisions, len(recs))
			}
			if res.Metrics.Gauges["micco_run_makespan_seconds"] != res.Makespan {
				t.Errorf("makespan gauge = %v, want %v",
					res.Metrics.Gauges["micco_run_makespan_seconds"], res.Makespan)
			}
		})
	}
}

// TestMICCOBoundAttribution checks that MICCO publishes which reuse bound
// gated each placement and that the attribution is consistent with the
// pattern actually observed.
func TestMICCOBoundAttribution(t *testing.T) {
	w := obsWorkload(t)
	cluster := obsCluster(t, w, 4)
	reg := micco.NewMetricsRegistry()
	if _, err := micco.Run(context.Background(), w, micco.NewMICCOFixed(micco.Bounds{1, 2, 1}),
		cluster, micco.RunOptions{Obs: reg}); err != nil {
		t.Fatal(err)
	}
	seen := map[int]int{}
	for i, r := range reg.Decisions() {
		if r.BoundIndex < -1 || r.BoundIndex > 2 {
			t.Fatalf("record %d: bound index %d out of range", i, r.BoundIndex)
		}
		seen[r.BoundIndex]++
		if r.BoundIndex == 0 && r.Pattern.String() != "twoRepeatedSame" {
			t.Errorf("record %d: bound 0 placement with pattern %s", i, r.Pattern)
		}
	}
	if seen[2] == 0 {
		t.Error("no placement ever reached the step-III bound (twoNew pairs exist in every workload)")
	}
}

// TestNumericWorkerGauges checks that a concurrent numeric run publishes
// one busy/wait/utilization gauge triple per pool worker.
func TestNumericWorkerGauges(t *testing.T) {
	w := obsWorkload(t)
	cluster := obsCluster(t, w, 2)
	reg := micco.NewMetricsRegistry()
	res, err := micco.Run(context.Background(), w, micco.NewMICCONaive(), cluster,
		micco.RunOptions{Obs: reg, Numeric: true, Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumericFingerprint == 0 {
		t.Error("numeric run produced no fingerprint")
	}
	snap := reg.Snapshot()
	for worker := 0; worker < 2; worker++ {
		for _, metric := range []string{"busy_seconds", "wait_seconds", "utilization"} {
			name := fmt.Sprintf("micco_numeric_worker_%s{worker=\"%d\"}", metric, worker)
			v, ok := snap.Gauges[name]
			if !ok {
				t.Errorf("gauge %s missing", name)
				continue
			}
			if v < 0 {
				t.Errorf("gauge %s = %v, want >= 0", name, v)
			}
		}
		util := snap.Gauges[fmt.Sprintf("micco_numeric_worker_utilization{worker=\"%d\"}", worker)]
		if util > 1 {
			t.Errorf("worker %d utilization %v > 1", worker, util)
		}
	}
}

// TestRunWithoutObservabilityHasNoMetrics pins the disabled default: no
// registry, no snapshot, no decision side-channel.
func TestRunWithoutObservabilityHasNoMetrics(t *testing.T) {
	w := obsWorkload(t)
	cluster := obsCluster(t, w, 2)
	res, err := micco.Run(context.Background(), w, micco.NewMICCONaive(), cluster, micco.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics != nil {
		t.Errorf("Result.Metrics = %+v, want nil without a registry", res.Metrics)
	}
}

// TestObservabilityDoesNotChangeScheduling pins that attaching a registry
// is purely observational: placements, makespan, and stats are identical
// with and without it.
func TestObservabilityDoesNotChangeScheduling(t *testing.T) {
	w := obsWorkload(t)
	plain, err := micco.Run(context.Background(), w, micco.NewMICCONaive(), obsCluster(t, w, 4),
		micco.RunOptions{RecordAssignments: true})
	if err != nil {
		t.Fatal(err)
	}
	observed, err := micco.Run(context.Background(), w, micco.NewMICCONaive(), obsCluster(t, w, 4),
		micco.RunOptions{RecordAssignments: true, Obs: micco.NewMetricsRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	if plain.Makespan != observed.Makespan || plain.Total != observed.Total {
		t.Errorf("observability changed the run: %+v vs %+v", plain.Total, observed.Total)
	}
	for si := range plain.Assignments {
		for pi := range plain.Assignments[si] {
			if plain.Assignments[si][pi] != observed.Assignments[si][pi] {
				t.Fatalf("stage %d pair %d: device %d vs %d", si, pi,
					plain.Assignments[si][pi], observed.Assignments[si][pi])
			}
		}
	}
}

// TestPublicExportSurface exercises the re-exported writers end to end.
func TestPublicExportSurface(t *testing.T) {
	w := obsWorkload(t)
	cluster := obsCluster(t, w, 2)
	cluster.StartTrace()
	reg := micco.NewMetricsRegistry()
	if _, err := micco.Run(context.Background(), w, micco.NewGroute(), cluster,
		micco.RunOptions{Obs: reg}); err != nil {
		t.Fatal(err)
	}
	events := cluster.StopTrace()

	var prom bytes.Buffer
	if err := micco.WritePrometheus(&prom, reg); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"# TYPE micco_run_makespan_seconds gauge", "micco_sim_events_total"} {
		if !strings.Contains(prom.String(), want) {
			t.Errorf("Prometheus export missing %q", want)
		}
	}

	var nd bytes.Buffer
	if err := micco.WriteDecisions(&nd, reg.Decisions()); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(nd.String(), "\n"); lines != w.NumPairs() {
		t.Errorf("NDJSON lines = %d, want %d", lines, w.NumPairs())
	}

	var trace bytes.Buffer
	if err := micco.WriteChromeTraceMerged(&trace, events, reg.Decisions()); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(trace.String(), `"ph":"i"`) {
		t.Error("merged trace has no instant events")
	}
}
