package micco

import (
	"errors"
	"fmt"

	"micco/internal/baseline"
	"micco/internal/core"
	"micco/internal/hier"
)

// ErrUnknownScheduler marks a scheduler name absent from the registry.
var ErrUnknownScheduler = errors.New("unknown scheduler")

// schedulerEntry is one registry row: how to build the scheduler and what
// it needs.
type schedulerEntry struct {
	needsPredictor bool
	build          func(b Bounds, p BoundsPredictor) Scheduler
}

// schedulerRegistry maps every scheduler name to its constructor. The
// command-line tools resolve their -scheduler flags here, so adding a row
// makes a scheduler available everywhere at once.
var schedulerRegistry = map[string]schedulerEntry{
	"micco": {
		build: func(b Bounds, _ BoundsPredictor) Scheduler { return core.NewFixed(b) },
	},
	"micco-naive": {
		build: func(_ Bounds, _ BoundsPredictor) Scheduler { return core.NewNaive() },
	},
	"micco-optimal": {
		needsPredictor: true,
		build:          func(_ Bounds, p BoundsPredictor) Scheduler { return core.NewOptimal(p) },
	},
	"groute": {
		build: func(_ Bounds, _ BoundsPredictor) Scheduler { return baseline.NewGroute() },
	},
	"roundrobin": {
		build: func(_ Bounds, _ BoundsPredictor) Scheduler { return baseline.NewRoundRobin() },
	},
	"locality": {
		build: func(_ Bounds, _ BoundsPredictor) Scheduler { return baseline.NewLocalityOnly() },
	},
	"hier": {
		build: func(b Bounds, _ BoundsPredictor) Scheduler { return hier.New(16, b) },
	},
}

// schedulerOrder fixes the presentation order of SchedulerNames: MICCO
// variants first, then the two-level multi-node scheduler, then the
// baselines and ablations.
var schedulerOrder = []string{
	"micco", "micco-naive", "micco-optimal", "hier", "groute", "roundrobin", "locality",
}

// SchedulerNames lists every registered scheduler name in presentation
// order (MICCO variants, then baselines).
func SchedulerNames() []string {
	out := make([]string, len(schedulerOrder))
	copy(out, schedulerOrder)
	return out
}

// NewSchedulerByName builds a registered scheduler. b configures the
// fixed-bounds "micco" scheduler (ignored by the others); p supplies the
// trained model "micco-optimal" requires (ignored by the others, see
// SchedulerNeedsPredictor). Unknown names return ErrUnknownScheduler;
// "micco-optimal" with a nil predictor returns ErrNilArgument.
func NewSchedulerByName(name string, b Bounds, p BoundsPredictor) (Scheduler, error) {
	e, ok := schedulerRegistry[name]
	if !ok {
		return nil, fmt.Errorf("micco: %w %q (have %v)", ErrUnknownScheduler, name, SchedulerNames())
	}
	if e.needsPredictor && p == nil {
		return nil, fmt.Errorf("micco: %w: scheduler %q requires a bounds predictor", ErrNilArgument, name)
	}
	return e.build(b, p), nil
}

// SchedulerNeedsPredictor reports whether the named scheduler requires a
// trained bounds predictor (false for unknown names).
func SchedulerNeedsPredictor(name string) bool {
	return schedulerRegistry[name].needsPredictor
}
