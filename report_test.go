package micco_test

import (
	"bytes"
	"context"
	"fmt"
	"math"
	"reflect"
	"testing"

	"micco"
)

// TestCriticalPathPartitionProperty is the critical-path invariant run as
// a property test over every registered scheduler and two workload seeds:
// the segments returned by CriticalPathOf must exactly partition
// [0, makespan] — first segment starts at 0, every boundary matches the
// next start bit for bit, the last segment ends at the makespan — and the
// blame tables must each account for the whole makespan.
func TestCriticalPathPartitionProperty(t *testing.T) {
	for _, seed := range []int64{11, 23} {
		w, err := micco.GenerateWorkload(micco.WorkloadConfig{
			Seed: seed, Stages: 5, VectorSize: 8, TensorDim: 64, Batch: 2,
			Rank: micco.RankMeson, RepeatRate: 0.5, Dist: micco.Uniform,
		})
		if err != nil {
			t.Fatal(err)
		}
		for _, name := range micco.SchedulerNames() {
			if micco.SchedulerNeedsPredictor(name) {
				continue // needs a trained model; covered by miccobench
			}
			t.Run(fmt.Sprintf("%s/seed%d", name, seed), func(t *testing.T) {
				s, err := micco.NewSchedulerByName(name, micco.Bounds{0, 2, 0}, nil)
				if err != nil {
					t.Fatal(err)
				}
				cfg := micco.MI100(4)
				cfg.MemoryBytes = w.TotalUniqueBytes() / 4
				cluster, err := micco.NewCluster(cfg)
				if err != nil {
					t.Fatal(err)
				}
				cluster.StartTrace()
				res, err := micco.Run(context.Background(), w, s, cluster, micco.RunOptions{})
				if err != nil {
					t.Fatal(err)
				}
				events := cluster.StopTrace()
				cp := micco.CriticalPathOf(events, res.Makespan)
				if len(cp.Segments) == 0 {
					t.Fatal("critical path is empty")
				}
				if cp.Segments[0].Start != 0 {
					t.Errorf("first segment starts at %v, want 0", cp.Segments[0].Start)
				}
				var sum float64
				for i, seg := range cp.Segments {
					if seg.End <= seg.Start {
						t.Fatalf("segment %d: non-positive duration [%v, %v]", i, seg.Start, seg.End)
					}
					if i > 0 && seg.Start != cp.Segments[i-1].End {
						t.Fatalf("segment %d starts at %v, previous ended at %v (gap or overlap)",
							i, seg.Start, cp.Segments[i-1].End)
					}
					sum += seg.End - seg.Start
				}
				if last := cp.Segments[len(cp.Segments)-1].End; last != res.Makespan {
					t.Errorf("last segment ends at %v, want makespan %v", last, res.Makespan)
				}
				if math.Abs(sum-res.Makespan) > 1e-9*res.Makespan {
					t.Errorf("segment durations sum to %v, want makespan %v", sum, res.Makespan)
				}
				checkShares := func(label string, total float64) {
					if math.Abs(total-res.Makespan) > 1e-9*res.Makespan {
						t.Errorf("%s blame shares sum to %v, want makespan %v", label, total, res.Makespan)
					}
				}
				var byDev, byKind, byRes float64
				for _, s := range cp.ByDevice {
					byDev += s.Seconds
				}
				for _, s := range cp.ByKind {
					byKind += s.Seconds
				}
				for _, s := range cp.ByResource {
					byRes += s.Seconds
				}
				checkShares("device", byDev)
				checkShares("kind", byKind)
				checkShares("resource", byRes)
			})
		}
	}
}

// TestFlightRecorderRunsBitIdentical pins that attaching a registry with a
// live flight recorder is purely observational: the numeric fingerprint,
// makespan, stats totals and every placement match an unobserved run bit
// for bit.
func TestFlightRecorderRunsBitIdentical(t *testing.T) {
	w := obsWorkload(t)
	runOnce := func(reg *micco.MetricsRegistry) *micco.Result {
		t.Helper()
		res, err := micco.Run(context.Background(), w, micco.NewMICCOFixed(micco.Bounds{0, 2, 0}),
			obsCluster(t, w, 4),
			micco.RunOptions{RecordAssignments: true, Numeric: true, NumericSeed: 5, Obs: reg})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	plain := runOnce(nil)
	reg := micco.NewMetricsRegistry()
	reg.SetFlightRecorder(micco.NewFlightRecorder(micco.FlightConfig{}))
	observed := runOnce(reg)

	if plain.NumericFingerprint != observed.NumericFingerprint {
		t.Errorf("fingerprint %x with recorder, %x without",
			observed.NumericFingerprint, plain.NumericFingerprint)
	}
	if plain.Makespan != observed.Makespan || plain.Total != observed.Total {
		t.Errorf("recorder changed the run: %+v vs %+v", observed.Total, plain.Total)
	}
	if !reflect.DeepEqual(plain.Assignments, observed.Assignments) {
		t.Error("recorder changed placements")
	}
	snap := reg.FlightRecorder().Snapshot()
	if len(snap.Events) == 0 || len(snap.Decisions) == 0 || len(snap.Spans) == 0 {
		t.Errorf("flight recorder retained %d events, %d decisions, %d spans; want all non-empty",
			len(snap.Events), len(snap.Decisions), len(snap.Spans))
	}
}

// TestDecisionsNDJSONRoundTrip writes a real run's decision records as
// NDJSON, parses them back, and requires field-for-field equality.
func TestDecisionsNDJSONRoundTrip(t *testing.T) {
	w := obsWorkload(t)
	reg := micco.NewMetricsRegistry()
	if _, err := micco.Run(context.Background(), w, micco.NewMICCONaive(), obsCluster(t, w, 4),
		micco.RunOptions{Obs: reg}); err != nil {
		t.Fatal(err)
	}
	recs := reg.Decisions()
	if len(recs) == 0 {
		t.Fatal("run produced no decision records")
	}
	var buf bytes.Buffer
	if err := micco.WriteDecisions(&buf, recs); err != nil {
		t.Fatal(err)
	}
	back, err := micco.ReadDecisions(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(recs) {
		t.Fatalf("round trip returned %d records, want %d", len(back), len(recs))
	}
	for i := range recs {
		if !reflect.DeepEqual(recs[i], back[i]) {
			t.Fatalf("record %d round trip mismatch:\nwrote %+v\nread  %+v", i, recs[i], back[i])
		}
	}
}

// TestSpanParentNesting checks the span tree of a faulted run: one root
// run span, every stage span and every recovery span parented to it.
func TestSpanParentNesting(t *testing.T) {
	w := obsWorkload(t)
	reg := micco.NewMetricsRegistry()
	plan := &micco.FaultPlan{Events: []micco.FaultEvent{
		{Kind: micco.FaultDeviceLoss, Stage: 1, Pair: 0, Device: 3},
	}}
	if _, err := micco.Run(context.Background(), w, micco.NewMICCONaive(), obsCluster(t, w, 4),
		micco.RunOptions{Obs: reg, FaultPlan: plan}); err != nil {
		t.Fatal(err)
	}
	spans := reg.Snapshot().Spans
	var runID uint64
	counts := map[string]int{}
	for _, s := range spans {
		counts[s.Name]++
		if s.Name == "run" {
			if runID != 0 {
				t.Fatal("more than one run span")
			}
			if s.Parent != 0 {
				t.Errorf("run span has parent %d, want root", s.Parent)
			}
			runID = s.ID
		}
	}
	if runID == 0 {
		t.Fatal("no run span recorded")
	}
	if counts["stage"] != len(w.Stages) {
		t.Errorf("stage spans = %d, want %d", counts["stage"], len(w.Stages))
	}
	if counts["recovery"] == 0 {
		t.Error("faulted run recorded no recovery span")
	}
	for _, s := range spans {
		switch s.Name {
		case "stage", "recovery":
			if s.Parent != runID {
				t.Errorf("%s span %d has parent %d, want run span %d", s.Name, s.ID, s.Parent, runID)
			}
			if s.End < s.Start {
				t.Errorf("%s span %d ends (%v) before it starts (%v)", s.Name, s.ID, s.End, s.Start)
			}
		}
	}
}
