package micco_test

import (
	"bytes"
	"context"
	"math"
	"testing"

	"micco"
)

// TestFullPipelineIntegration drives the complete stack through the public
// API: train and persist a reuse-bound model, build a correlator through
// the Wick front end, schedule it on a traced single-node cluster and on
// the multi-node extension, and run the spectroscopy analysis on its
// numeric evaluation.
func TestFullPipelineIntegration(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline")
	}

	// 1. Offline: build a corpus and train the Random Forest.
	corpus, err := micco.BuildCorpus(context.Background(), micco.CorpusConfig{
		Samples: 30, Seed: 9, NumGPU: 4, Stages: 3, Batch: 2, Replicas: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	pred, err := micco.TrainPredictor(corpus, micco.ForestModel, 0.2, 9)
	if err != nil {
		t.Fatal(err)
	}
	pred.NumGPU = 4

	// 2. Persist and reload the model, as a deployment would.
	var buf bytes.Buffer
	if err := pred.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := micco.LoadPredictor(&buf)
	if err != nil {
		t.Fatal(err)
	}

	// 3. Front end: build a small correlator.
	corr := micco.A1RhoPi()
	corr.TimeSlices = 4
	corr.Momenta = 2
	corr.TensorDim = 192 // large enough that transfers dominate launches
	corr.Batch = 4
	build, err := corr.BuildPlan()
	if err != nil {
		t.Fatal(err)
	}

	// 4. Single node with tracing: MICCO-optimal must beat Groute.
	cfg := micco.MI100(4)
	cfg.MemoryBytes = int64(1.2 * float64(build.Plan.TotalUniqueBytes()))
	cluster, err := micco.NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	groute, err := micco.Run(context.Background(), build.Workload, micco.NewGroute(), cluster, micco.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	cluster.StartTrace()
	opt, err := micco.Run(context.Background(), build.Workload, micco.NewMICCOOptimal(loaded), cluster, micco.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	events := cluster.StopTrace()
	if micco.Speedup(opt, groute) <= 1.0 {
		t.Errorf("MICCO-optimal %.0f vs Groute %.0f: no speedup on correlator data",
			opt.GFLOPS, groute.GFLOPS)
	}
	if len(events) == 0 {
		t.Fatal("trace captured no events")
	}
	kernels := 0
	for _, e := range events {
		if e.Kind == micco.TraceKernel {
			kernels++
		}
	}
	if kernels != build.Workload.NumPairs() {
		t.Errorf("traced %d kernels, want %d", kernels, build.Workload.NumPairs())
	}
	var chrome bytes.Buffer
	if err := micco.WriteChromeTrace(&chrome, events); err != nil {
		t.Fatal(err)
	}
	var summary bytes.Buffer
	if err := micco.WriteTraceSummary(&summary, events); err != nil {
		t.Fatal(err)
	}
	if chrome.Len() == 0 || summary.Len() == 0 {
		t.Error("trace exports empty")
	}

	// 5. Multi-node extension on the same workload.
	mcfg := micco.DefaultMultiNodeConfig(2, 2)
	mcfg.Node.MemoryBytes = cfg.MemoryBytes
	mc, err := micco.NewMultiNodeCluster(mcfg)
	if err != nil {
		t.Fatal(err)
	}
	mres, err := micco.RunMultiNode(context.Background(), build.Workload, mc)
	if err != nil {
		t.Fatal(err)
	}
	if mres.GFLOPS <= 0 {
		t.Error("multi-node run degenerate")
	}

	// 6. Physics: numeric evaluation (on a scaled-down copy — real
	// arithmetic is the expensive part) plus spectroscopy analysis.
	small := *corr
	small.TensorDim, small.Batch = 16, 1
	smallBuild, err := small.BuildPlan()
	if err != nil {
		t.Fatal(err)
	}
	series, err := smallBuild.EvaluateNumeric(11, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != corr.TimeSlices {
		t.Fatalf("series has %d times, want %d", len(series), corr.TimeSlices)
	}
	meff := micco.EffectiveMass(micco.CorrelatorSeries(series))
	if len(meff) != corr.TimeSlices-1 {
		t.Errorf("m_eff points = %d, want %d", len(meff), corr.TimeSlices-1)
	}
	// Sanity of the analysis chain on a known signal.
	synth := micco.SyntheticCorrelator(3, 0.5, 1, 8)
	_, mass, err := micco.FitCorrelator(synth)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mass-0.5) > 1e-9 {
		t.Errorf("fit mass = %v, want 0.5", mass)
	}
}

// TestNumericSchedulingAgreement verifies end to end that scheduling
// decisions never change numerical results: the same workload run under
// three different schedulers yields one numeric fingerprint.
func TestNumericSchedulingAgreement(t *testing.T) {
	w, err := micco.GenerateWorkload(micco.WorkloadConfig{
		Seed: 13, Stages: 3, VectorSize: 6, TensorDim: 24, Batch: 2,
		Rank: micco.RankMeson, RepeatRate: 0.6, Dist: micco.Gaussian,
	})
	if err != nil {
		t.Fatal(err)
	}
	cluster, err := micco.NewCluster(micco.MI100(3))
	if err != nil {
		t.Fatal(err)
	}
	opts := micco.RunOptions{Numeric: true, NumericSeed: 4}
	var prints []float64
	for _, s := range []micco.Scheduler{
		micco.NewGroute(), micco.NewMICCONaive(), micco.NewRoundRobin(),
	} {
		res, err := micco.Run(context.Background(), w, s, cluster, opts)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		prints = append(prints, res.NumericFingerprint)
	}
	if prints[0] == 0 {
		t.Fatal("zero fingerprint")
	}
	for i := 1; i < len(prints); i++ {
		if prints[i] != prints[0] {
			t.Errorf("fingerprint %d differs: %v vs %v", i, prints[i], prints[0])
		}
	}
}
